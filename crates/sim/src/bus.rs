//! An AHB-like system bus: arbiter, address decode, burst transfers.
//!
//! The paper integrates the OCP "in a classical way, meaning as a regular
//! peripheral (usually on the communication bus)" — on its Leon3 platform
//! that bus is AMBA2 AHB. This model reproduces the AHB timing structure
//! that the paper's transfer results (≈1.5 cycles per word, §V-B) depend
//! on:
//!
//! * a single shared data path with one active transaction at a time;
//! * an arbitration cycle (grant) followed by an address cycle;
//! * data beats of one word per cycle plus per-slave wait states (a
//!   higher first-access penalty models the external SRAM of the
//!   paper's Nexys4 board);
//! * long transfers split into sub-bursts of at most
//!   [`BusConfig::max_burst_beats`] beats (AHB INCR16), with
//!   re-arbitration between sub-bursts so other masters can interleave.
//!
//! Masters interact through a polling interface that mirrors bus-request/
//! bus-grant signalling: [`Bus::try_begin`] raises the request,
//! [`Bus::tick`] advances one clock cycle, [`Bus::poll`] samples the
//! port, and [`Bus::take_completion`] retires the finished transaction.

use std::error::Error;
use std::fmt;

use crate::clock::Cycle;
use crate::trace::Trace;

/// A byte address on the system bus.
pub type Addr = u32;

/// Identifies a registered bus master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterId(usize);

impl MasterId {
    /// The raw index (registration order, which is also the fixed
    /// arbitration priority).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    pub(crate) fn from_index(index: usize) -> Self {
        Self(index)
    }
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Transfer from slave to master.
    Read,
    /// Transfer from master to slave.
    Write,
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnKind::Read => f.write_str("read"),
            TxnKind::Write => f.write_str("write"),
        }
    }
}

/// A transaction request: a word-aligned address plus a burst of beats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRequest {
    kind: TxnKind,
    addr: Addr,
    beats: u16,
    data: Vec<u32>,
}

impl TxnRequest {
    /// A burst read of `beats` words starting at `addr`.
    #[must_use]
    pub fn read(addr: Addr, beats: u16) -> Self {
        Self {
            kind: TxnKind::Read,
            addr,
            beats,
            data: Vec::new(),
        }
    }

    /// A single-word read.
    #[must_use]
    pub fn read_word(addr: Addr) -> Self {
        Self::read(addr, 1)
    }

    /// A burst write of `data` starting at `addr`.
    #[must_use]
    pub fn write(addr: Addr, data: Vec<u32>) -> Self {
        let beats = data.len() as u16;
        Self {
            kind: TxnKind::Write,
            addr,
            beats,
            data,
        }
    }

    /// A single-word write.
    #[must_use]
    pub fn write_word(addr: Addr, value: u32) -> Self {
        Self::write(addr, vec![value])
    }

    /// The transaction kind.
    #[must_use]
    pub fn kind(&self) -> TxnKind {
        self.kind
    }

    /// The start address.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Number of data beats.
    #[must_use]
    pub fn beats(&self) -> u16 {
        self.beats
    }

    /// The write payload (empty for reads).
    #[must_use]
    pub fn write_data(&self) -> &[u32] {
        &self.data
    }
}

/// The result of a finished transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Transaction kind.
    pub kind: TxnKind,
    /// Start address.
    pub addr: Addr,
    /// Read data (empty for writes).
    pub data: Vec<u32>,
    /// Cycle at which [`Bus::try_begin`] accepted the request.
    pub issued_at: Cycle,
    /// Cycle at which the final beat completed.
    pub completed_at: Cycle,
    /// Total cycles from issue to completion.
    pub cycles: u64,
}

/// State of a master port as seen by [`Bus::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortState {
    /// No transaction outstanding.
    Idle,
    /// A transaction is queued or in flight.
    Pending,
    /// A completion is waiting to be taken.
    Complete,
}

impl PortState {
    /// Whether a transaction is still in flight.
    #[must_use]
    pub fn is_pending(self) -> bool {
        matches!(self, PortState::Pending)
    }

    /// Whether [`Bus::take_completion`] would return `Some`.
    #[must_use]
    pub fn is_complete(self) -> bool {
        matches!(self, PortState::Complete)
    }
}

/// A fault raised by a slave during a beat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlaveFault {
    /// Explanation (e.g. `"offset out of range"`).
    pub reason: String,
}

impl fmt::Display for SlaveFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slave fault: {}", self.reason)
    }
}

impl Error for SlaveFault {}

/// A memory-mapped peripheral or memory on the bus.
///
/// Offsets are byte offsets from the slave's base address, always
/// word-aligned. Wait states let a slave model its access latency; the
/// bus charges `first_access_wait_states` before the first beat of every
/// sub-burst and `sequential_wait_states` between subsequent beats.
pub trait BusSlave {
    /// Name used in traces and error messages.
    fn name(&self) -> &str;

    /// Size of the slave's address window in bytes.
    fn size(&self) -> u32;

    /// Reads the word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns a [`SlaveFault`] for offsets the device cannot serve.
    fn read_word(&mut self, offset: u32) -> Result<u32, SlaveFault>;

    /// Writes the word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns a [`SlaveFault`] for offsets the device cannot serve.
    fn write_word(&mut self, offset: u32, value: u32) -> Result<(), SlaveFault>;

    /// Wait states before the first beat of a sub-burst.
    fn first_access_wait_states(&self) -> u32 {
        0
    }

    /// Wait states between subsequent beats of a sub-burst.
    fn sequential_wait_states(&self) -> u32 {
        0
    }
}

/// Errors surfaced by [`Bus::try_begin`] or recorded in a completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// The master already has a transaction outstanding.
    Busy,
    /// The address is not word-aligned.
    Unaligned {
        /// Offending address.
        addr: Addr,
    },
    /// A zero-beat transaction was requested.
    EmptyBurst,
    /// No slave is mapped at the address range.
    Unmapped {
        /// Offending address.
        addr: Addr,
    },
    /// The burst would cross out of its slave's window.
    CrossesSlaveBoundary {
        /// Start address.
        addr: Addr,
        /// Number of beats.
        beats: u16,
    },
    /// The slave faulted mid-transaction.
    Fault(SlaveFault),
    /// The master id was not obtained from this bus.
    UnknownMaster,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Busy => f.write_str("master already has a transaction outstanding"),
            BusError::Unaligned { addr } => write!(f, "address {addr:#010x} is not word-aligned"),
            BusError::EmptyBurst => f.write_str("burst of zero beats"),
            BusError::Unmapped { addr } => write!(f, "no slave mapped at {addr:#010x}"),
            BusError::CrossesSlaveBoundary { addr, beats } => write!(
                f,
                "burst of {beats} beats at {addr:#010x} crosses its slave's window"
            ),
            BusError::Fault(e) => write!(f, "{e}"),
            BusError::UnknownMaster => f.write_str("master id not registered on this bus"),
        }
    }
}

impl Error for BusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BusError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

/// Arbitration policy between requesting masters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterPolicy {
    /// Lower [`MasterId`] always wins (AHB-style fixed priority; the
    /// paper's Leon3 CPU is registered first and thus outranks the OCP).
    #[default]
    FixedPriority,
    /// Rotating priority starting after the last grantee.
    RoundRobin,
}

/// Static bus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Maximum beats per sub-burst before re-arbitration (AHB INCR16
    /// ⇒ 16).
    pub max_burst_beats: u16,
    /// Arbitration policy.
    pub arbiter: ArbiterPolicy,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            max_burst_beats: 16,
            arbiter: ArbiterPolicy::default(),
        }
    }
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusStats {
    /// Cycles ticked.
    pub cycles: u64,
    /// Cycles with a transaction occupying the data path (including
    /// grant/address/wait cycles).
    pub busy_cycles: u64,
    /// Grants issued (one per sub-burst).
    pub grants: u64,
    /// Data beats completed.
    pub beats: u64,
    /// Cycles a master spent requesting while another held the bus.
    pub contention_cycles: u64,
}

/// Per-master statistics — the arbitration-level view a pool scheduler
/// needs: which master is hogging the data path, and who is starving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MasterStats {
    /// Grants won (one per sub-burst).
    pub grants: u64,
    /// Data beats completed on this master's behalf.
    pub beats: u64,
    /// Transactions retired without fault.
    pub txns_completed: u64,
    /// Cycles spent requesting while another master held the bus.
    pub contention_cycles: u64,
}

#[derive(Debug)]
struct OutstandingTxn {
    req: TxnRequest,
    beats_done: u16,
    read_data: Vec<u32>,
    issued_at: Cycle,
    slave_idx: usize,
}

#[derive(Debug)]
struct MasterPort {
    name: String,
    outstanding: Option<OutstandingTxn>,
    completion: Option<Result<Completion, BusError>>,
    stats: MasterStats,
}

#[derive(Debug)]
enum Phase {
    /// Grant issued this cycle; address phase next.
    Granted,
    /// Address phase done; counting down wait states before a beat.
    Beat { wait_left: u32, sub_beats_left: u16 },
}

#[derive(Debug)]
struct ActiveGrant {
    master: usize,
    phase: Phase,
}

struct SlaveEntry {
    base: Addr,
    size: u32,
    device: Box<dyn BusSlave>,
}

impl fmt::Debug for SlaveEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlaveEntry")
            .field("base", &format_args!("{:#010x}", self.base))
            .field("size", &self.size)
            .field("device", &self.device.name())
            .finish()
    }
}

/// The AHB-like system bus.
///
/// See the [module documentation](self) for the timing model and an
/// end-to-end example.
#[derive(Debug)]
pub struct Bus {
    config: BusConfig,
    now: Cycle,
    masters: Vec<MasterPort>,
    slaves: Vec<SlaveEntry>,
    active: Option<ActiveGrant>,
    last_grantee: usize,
    stats: BusStats,
    /// Shared trace (disabled by default).
    pub trace: Trace,
}

impl Bus {
    /// Creates an empty bus.
    #[must_use]
    pub fn new(config: BusConfig) -> Self {
        Self {
            config,
            now: Cycle::ZERO,
            masters: Vec::new(),
            slaves: Vec::new(),
            active: None,
            last_grantee: 0,
            stats: BusStats::default(),
            trace: Trace::disabled(),
        }
    }

    /// The bus configuration.
    #[must_use]
    pub fn config(&self) -> BusConfig {
        self.config
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Registers a master; the returned id is also its fixed priority
    /// (lower = higher priority).
    pub fn register_master(&mut self, name: &str) -> MasterId {
        self.masters.push(MasterPort {
            name: name.to_string(),
            outstanding: None,
            completion: None,
            stats: MasterStats::default(),
        });
        MasterId(self.masters.len() - 1)
    }

    /// Number of registered masters.
    #[must_use]
    pub fn num_masters(&self) -> usize {
        self.masters.len()
    }

    /// The name `master` was registered under.
    ///
    /// # Panics
    ///
    /// Panics if `master` was not registered on this bus.
    #[must_use]
    pub fn master_name(&self, master: MasterId) -> &str {
        &self.masters[master.0].name
    }

    /// Per-master statistics (grants, beats, contention).
    ///
    /// # Panics
    ///
    /// Panics if `master` was not registered on this bus.
    #[must_use]
    pub fn master_stats(&self, master: MasterId) -> MasterStats {
        self.masters[master.0].stats
    }

    /// Maps `device` at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned or the window overlaps an
    /// existing slave — both are static SoC integration errors.
    pub fn add_slave(&mut self, base: Addr, device: impl BusSlave + 'static) {
        assert_eq!(base % 4, 0, "slave base must be word-aligned");
        let size = device.size();
        assert!(size > 0, "slave window must be non-empty");
        let end = base as u64 + size as u64;
        for s in &self.slaves {
            let s_end = s.base as u64 + s.size as u64;
            assert!(
                end <= s.base as u64 || s_end <= base as u64,
                "slave window {:#010x}..{:#010x} overlaps {}",
                base,
                end,
                s.device.name()
            );
        }
        self.slaves.push(SlaveEntry {
            base,
            size,
            device: Box::new(device),
        });
    }

    /// Direct, un-timed access to a mapped slave for test setup and
    /// result inspection (does not consume bus cycles).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Unmapped`] or the slave's fault.
    pub fn debug_read(&mut self, addr: Addr) -> Result<u32, BusError> {
        let idx = self.decode(addr)?;
        let offset = addr - self.slaves[idx].base;
        self.slaves[idx]
            .device
            .read_word(offset)
            .map_err(BusError::Fault)
    }

    /// Direct, un-timed write to a mapped slave (test setup only).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Unmapped`] or the slave's fault.
    pub fn debug_write(&mut self, addr: Addr, value: u32) -> Result<(), BusError> {
        let idx = self.decode(addr)?;
        let offset = addr - self.slaves[idx].base;
        self.slaves[idx]
            .device
            .write_word(offset, value)
            .map_err(BusError::Fault)
    }

    fn decode(&self, addr: Addr) -> Result<usize, BusError> {
        self.slaves
            .iter()
            .position(|s| addr >= s.base && u64::from(addr) < s.base as u64 + s.size as u64)
            .ok_or(BusError::Unmapped { addr })
    }

    /// Raises a bus request for `master`.
    ///
    /// Validation (alignment, mapping, boundary) happens immediately;
    /// timing starts at the next [`Bus::tick`].
    ///
    /// # Errors
    ///
    /// See [`BusError`]. On `Err` nothing is queued.
    pub fn try_begin(&mut self, master: MasterId, req: TxnRequest) -> Result<(), BusError> {
        let port = self.masters.get(master.0).ok_or(BusError::UnknownMaster)?;
        if port.outstanding.is_some() || port.completion.is_some() {
            return Err(BusError::Busy);
        }
        if !req.addr.is_multiple_of(4) {
            return Err(BusError::Unaligned { addr: req.addr });
        }
        if req.beats == 0 {
            return Err(BusError::EmptyBurst);
        }
        let slave_idx = self.decode(req.addr)?;
        let slave = &self.slaves[slave_idx];
        let end = u64::from(req.addr) + u64::from(req.beats) * 4;
        if end > slave.base as u64 + slave.size as u64 {
            return Err(BusError::CrossesSlaveBoundary {
                addr: req.addr,
                beats: req.beats,
            });
        }
        if self.trace.is_enabled() {
            self.trace.record(
                self.now,
                "bus",
                format!(
                    "{} requests {} of {} beats at {:#010x}",
                    self.masters[master.0].name, req.kind, req.beats, req.addr
                ),
            );
        }
        self.masters[master.0].outstanding = Some(OutstandingTxn {
            read_data: Vec::with_capacity(if req.kind == TxnKind::Read {
                req.beats as usize
            } else {
                0
            }),
            req,
            beats_done: 0,
            issued_at: self.now,
            slave_idx,
        });
        Ok(())
    }

    /// Samples a master port.
    ///
    /// # Panics
    ///
    /// Panics if `master` was not registered on this bus.
    #[must_use]
    pub fn poll(&self, master: MasterId) -> PortState {
        let port = &self.masters[master.0];
        if port.completion.is_some() {
            PortState::Complete
        } else if port.outstanding.is_some() {
            PortState::Pending
        } else {
            PortState::Idle
        }
    }

    /// Retires a finished transaction, if any.
    ///
    /// # Errors
    ///
    /// Propagates a [`BusError::Fault`] recorded when a slave faulted
    /// mid-burst.
    ///
    /// # Panics
    ///
    /// Panics if `master` was not registered on this bus.
    pub fn take_completion(&mut self, master: MasterId) -> Option<Result<Completion, BusError>> {
        self.masters[master.0].completion.take()
    }

    /// Charges one contention cycle to every requesting master while a
    /// *different* master owns the bus, and returns the number charged.
    ///
    /// Called *after* arbitration, so the master granted this cycle is
    /// never charged for the cycle it won, and nobody is charged during
    /// the unowned re-arbitration gap between sub-bursts — contention
    /// measures time spent losing the bus to somebody else, which is
    /// what a pool scheduler wants attributed per worker.
    fn charge_contention(&mut self) -> u64 {
        let Some(owner) = self.active.as_ref().map(|a| a.master) else {
            return 0;
        };
        let mut contending = 0;
        for (i, p) in self.masters.iter_mut().enumerate() {
            if p.outstanding.is_some() && i != owner {
                p.stats.contention_cycles += 1;
                contending += 1;
            }
        }
        contending
    }

    /// Advances the bus by one clock cycle.
    pub fn tick(&mut self) {
        self.now = self.now.next();
        self.stats.cycles += 1;

        match self.active.take() {
            None => {
                if let Some(winner) = self.arbitrate() {
                    self.stats.grants += 1;
                    self.stats.busy_cycles += 1;
                    self.masters[winner].stats.grants += 1;
                    self.last_grantee = winner;
                    if self.trace.is_enabled() {
                        self.trace.record(
                            self.now,
                            "bus",
                            format!("grant to {}", self.masters[winner].name),
                        );
                    }
                    self.active = Some(ActiveGrant {
                        master: winner,
                        phase: Phase::Granted,
                    });
                }
            }
            Some(mut grant) => {
                self.stats.busy_cycles += 1;
                match grant.phase {
                    Phase::Granted => {
                        // Address phase: compute sub-burst length and the
                        // first-access wait states.
                        let txn = self.masters[grant.master]
                            .outstanding
                            .as_ref()
                            .expect("granted master has an outstanding txn");
                        let remaining = txn.req.beats - txn.beats_done;
                        let sub = remaining.min(self.config.max_burst_beats);
                        let wait = self.slaves[txn.slave_idx].device.first_access_wait_states();
                        grant.phase = Phase::Beat {
                            wait_left: wait,
                            sub_beats_left: sub,
                        };
                        self.active = Some(grant);
                    }
                    Phase::Beat {
                        wait_left,
                        sub_beats_left,
                    } => {
                        if wait_left > 0 {
                            grant.phase = Phase::Beat {
                                wait_left: wait_left - 1,
                                sub_beats_left,
                            };
                            self.active = Some(grant);
                            return;
                        }
                        // Complete one beat.
                        let master_idx = grant.master;
                        let port = &mut self.masters[master_idx];
                        let txn = port
                            .outstanding
                            .as_mut()
                            .expect("granted master has an outstanding txn");
                        let beat_addr = txn.req.addr + u32::from(txn.beats_done) * 4;
                        let slave = &mut self.slaves[txn.slave_idx];
                        let offset = beat_addr - slave.base;
                        let fault = match txn.req.kind {
                            TxnKind::Read => match slave.device.read_word(offset) {
                                Ok(v) => {
                                    txn.read_data.push(v);
                                    None
                                }
                                Err(e) => Some(e),
                            },
                            TxnKind::Write => {
                                let value = txn.req.data[txn.beats_done as usize];
                                slave.device.write_word(offset, value).err()
                            }
                        };
                        self.stats.beats += 1;
                        port.stats.beats += 1;
                        txn.beats_done += 1;

                        if let Some(fault) = fault {
                            let txn = port.outstanding.take().expect("present");
                            port.completion = Some(Err(BusError::Fault(fault)));
                            if self.trace.is_enabled() {
                                self.trace.record(
                                    self.now,
                                    "bus",
                                    format!("fault at {:#010x}", txn.req.addr),
                                );
                            }
                            return;
                        }

                        let txn_done = txn.beats_done == txn.req.beats;
                        if txn_done {
                            let txn = port.outstanding.take().expect("present");
                            let completion = Completion {
                                kind: txn.req.kind,
                                addr: txn.req.addr,
                                data: txn.read_data,
                                issued_at: txn.issued_at,
                                completed_at: self.now,
                                cycles: self.now.count() - txn.issued_at.count(),
                            };
                            if self.trace.is_enabled() {
                                self.trace.record(
                                    self.now,
                                    "bus",
                                    format!(
                                        "{} completes {} ({} beats, {} cy)",
                                        port.name, txn.req.kind, txn.req.beats, completion.cycles
                                    ),
                                );
                            }
                            port.completion = Some(Ok(completion));
                            port.stats.txns_completed += 1;
                            // Bus returns to arbitration next cycle.
                        } else if sub_beats_left == 1 {
                            // Sub-burst boundary: release the bus and
                            // re-arbitrate (the transaction stays queued).
                            if self.trace.is_enabled() {
                                self.trace.record(
                                    self.now,
                                    "bus",
                                    format!("{} sub-burst boundary", port.name),
                                );
                            }
                        } else {
                            let wait = self.slaves[self.masters[master_idx]
                                .outstanding
                                .as_ref()
                                .expect("present")
                                .slave_idx]
                                .device
                                .sequential_wait_states();
                            grant.phase = Phase::Beat {
                                wait_left: wait,
                                sub_beats_left: sub_beats_left - 1,
                            };
                            self.active = Some(grant);
                        }
                    }
                }
            }
        }
        self.stats.contention_cycles += self.charge_contention();
    }

    fn arbitrate(&self) -> Option<usize> {
        let n = self.masters.len();
        if n == 0 {
            return None;
        }
        match self.config.arbiter {
            ArbiterPolicy::FixedPriority => (0..n).find(|&i| self.masters[i].outstanding.is_some()),
            ArbiterPolicy::RoundRobin => (1..=n)
                .map(|d| (self.last_grantee + d) % n)
                .find(|&i| self.masters[i].outstanding.is_some()),
        }
    }

    /// Runs the bus until `master`'s transaction completes, returning
    /// the completion. Convenience for tests and simple masters.
    ///
    /// # Errors
    ///
    /// Propagates faults recorded during the burst.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is outstanding or after a defensive
    /// 10-million-cycle bound is exceeded.
    pub fn run_to_completion(&mut self, master: MasterId) -> Result<Completion, BusError> {
        assert!(
            self.poll(master) != PortState::Idle,
            "no transaction outstanding"
        );
        let mut fuel = 10_000_000u64;
        while self.poll(master).is_pending() {
            self.tick();
            fuel -= 1;
            assert!(fuel > 0, "bus transaction did not complete");
        }
        self.take_completion(master).expect("completion present")
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.stats
    }
}

impl crate::event::NextEvent for Bus {
    /// `Some(1)` whenever any transfer machinery could move (a grant is
    /// active or any master has a transaction queued) — the bus is a
    /// cycle-accurate arbiter, so busy cycles are never skipped. `None`
    /// when no master is requesting: idle ticks only advance `now` and
    /// the cycle counter.
    fn horizon(&self) -> Option<Cycle> {
        if self.active.is_some() || self.masters.iter().any(|m| m.outstanding.is_some()) {
            Some(Cycle::new(1))
        } else {
            None
        }
    }

    fn advance(&mut self, cycles: Cycle) {
        debug_assert!(
            self.active.is_none() && self.masters.iter().all(|m| m.outstanding.is_none()),
            "bus advanced across a non-idle window"
        );
        self.now += cycles;
        self.stats.cycles += cycles.count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Sram, SramConfig};

    fn bus_with_sram() -> (Bus, MasterId) {
        let mut bus = Bus::new(BusConfig::default());
        let m = bus.register_master("cpu");
        bus.add_slave(0x4000_0000, Sram::with_words(1024, SramConfig::no_wait()));
        (bus, m)
    }

    #[test]
    fn single_write_then_read() {
        let (mut bus, m) = bus_with_sram();
        bus.try_begin(m, TxnRequest::write_word(0x4000_0010, 0xDEAD_BEEF))
            .unwrap();
        bus.run_to_completion(m).unwrap();
        bus.try_begin(m, TxnRequest::read_word(0x4000_0010))
            .unwrap();
        let c = bus.run_to_completion(m).unwrap();
        assert_eq!(c.data, vec![0xDEAD_BEEF]);
    }

    #[test]
    fn single_beat_timing_no_wait_states() {
        let (mut bus, m) = bus_with_sram();
        bus.try_begin(m, TxnRequest::write_word(0x4000_0000, 1))
            .unwrap();
        let c = bus.run_to_completion(m).unwrap();
        // grant + address + 1 beat = 3 cycles.
        assert_eq!(c.cycles, 3);
    }

    #[test]
    fn burst_timing_no_wait_states() {
        let (mut bus, m) = bus_with_sram();
        bus.try_begin(m, TxnRequest::write(0x4000_0000, vec![0; 16]))
            .unwrap();
        let c = bus.run_to_completion(m).unwrap();
        // grant + address + 16 beats = 18 cycles.
        assert_eq!(c.cycles, 18);
    }

    #[test]
    fn long_burst_splits_into_sub_bursts() {
        let (mut bus, m) = bus_with_sram();
        bus.try_begin(m, TxnRequest::write(0x4000_0000, vec![0; 64]))
            .unwrap();
        let c = bus.run_to_completion(m).unwrap();
        // 4 sub-bursts of (grant + address + 16 beats) = 4 * 18 = 72.
        assert_eq!(c.cycles, 72);
        assert_eq!(bus.stats().grants, 4);
    }

    #[test]
    fn wait_states_charged() {
        let mut bus = Bus::new(BusConfig::default());
        let m = bus.register_master("cpu");
        bus.add_slave(
            0,
            Sram::with_words(
                64,
                SramConfig {
                    first_access_wait_states: 3,
                    sequential_wait_states: 1,
                },
            ),
        );
        bus.try_begin(m, TxnRequest::read(0, 4)).unwrap();
        let c = bus.run_to_completion(m).unwrap();
        // grant + address + (3 wait + beat) + 3 * (1 wait + beat) = 12.
        assert_eq!(c.cycles, 12);
    }

    #[test]
    fn read_returns_data_in_order() {
        let (mut bus, m) = bus_with_sram();
        for i in 0..8u32 {
            bus.debug_write(0x4000_0000 + i * 4, i * 11).unwrap();
        }
        bus.try_begin(m, TxnRequest::read(0x4000_0000, 8)).unwrap();
        let c = bus.run_to_completion(m).unwrap();
        assert_eq!(c.data, (0..8u32).map(|i| i * 11).collect::<Vec<_>>());
    }

    #[test]
    fn busy_master_rejected() {
        let (mut bus, m) = bus_with_sram();
        bus.try_begin(m, TxnRequest::read_word(0x4000_0000))
            .unwrap();
        assert_eq!(
            bus.try_begin(m, TxnRequest::read_word(0x4000_0000)),
            Err(BusError::Busy)
        );
    }

    #[test]
    fn unaligned_rejected() {
        let (mut bus, m) = bus_with_sram();
        assert_eq!(
            bus.try_begin(m, TxnRequest::read_word(0x4000_0002)),
            Err(BusError::Unaligned { addr: 0x4000_0002 })
        );
    }

    #[test]
    fn unmapped_rejected() {
        let (mut bus, m) = bus_with_sram();
        assert_eq!(
            bus.try_begin(m, TxnRequest::read_word(0x9000_0000)),
            Err(BusError::Unmapped { addr: 0x9000_0000 })
        );
    }

    #[test]
    fn boundary_crossing_rejected() {
        let (mut bus, m) = bus_with_sram();
        // SRAM is 1024 words = 4096 bytes at 0x4000_0000.
        assert_eq!(
            bus.try_begin(m, TxnRequest::read(0x4000_0FFC, 2)),
            Err(BusError::CrossesSlaveBoundary {
                addr: 0x4000_0FFC,
                beats: 2
            })
        );
    }

    #[test]
    fn empty_burst_rejected() {
        let (mut bus, m) = bus_with_sram();
        assert_eq!(
            bus.try_begin(m, TxnRequest::read(0x4000_0000, 0)),
            Err(BusError::EmptyBurst)
        );
    }

    #[test]
    fn fixed_priority_prefers_lower_id() {
        let mut bus = Bus::new(BusConfig::default());
        let cpu = bus.register_master("cpu");
        let ocp = bus.register_master("ocp");
        bus.add_slave(0, Sram::with_words(256, SramConfig::no_wait()));
        bus.try_begin(ocp, TxnRequest::read(0, 16)).unwrap();
        bus.try_begin(cpu, TxnRequest::read_word(0x40)).unwrap();
        // CPU (id 0) should win arbitration even though OCP asked the
        // same cycle.
        let c_cpu = {
            while bus.poll(cpu).is_pending() {
                bus.tick();
            }
            bus.take_completion(cpu).unwrap().unwrap()
        };
        while bus.poll(ocp).is_pending() {
            bus.tick();
        }
        let c_ocp = bus.take_completion(ocp).unwrap().unwrap();
        assert!(c_cpu.completed_at < c_ocp.completed_at);
        assert!(bus.stats().contention_cycles > 0);
    }

    #[test]
    fn round_robin_alternates() {
        let mut bus = Bus::new(BusConfig {
            arbiter: ArbiterPolicy::RoundRobin,
            ..BusConfig::default()
        });
        let a = bus.register_master("a");
        let b = bus.register_master("b");
        bus.add_slave(0, Sram::with_words(256, SramConfig::no_wait()));
        // Issue many single transfers from both; each should make
        // progress without starvation.
        let mut done_a = 0;
        let mut done_b = 0;
        bus.try_begin(a, TxnRequest::read_word(0)).unwrap();
        bus.try_begin(b, TxnRequest::read_word(4)).unwrap();
        for _ in 0..200 {
            bus.tick();
            if bus.poll(a).is_complete() {
                bus.take_completion(a).unwrap().unwrap();
                done_a += 1;
                bus.try_begin(a, TxnRequest::read_word(0)).unwrap();
            }
            if bus.poll(b).is_complete() {
                bus.take_completion(b).unwrap().unwrap();
                done_b += 1;
                bus.try_begin(b, TxnRequest::read_word(4)).unwrap();
            }
        }
        assert!(done_a > 10 && done_b > 10);
        assert!((i64::from(done_a) - i64::from(done_b)).abs() <= 1);
    }

    #[test]
    fn slave_fault_mid_burst_reported() {
        struct Flaky;
        impl BusSlave for Flaky {
            fn name(&self) -> &str {
                "flaky"
            }
            fn size(&self) -> u32 {
                64
            }
            fn read_word(&mut self, offset: u32) -> Result<u32, SlaveFault> {
                if offset >= 8 {
                    Err(SlaveFault {
                        reason: "beyond implemented range".into(),
                    })
                } else {
                    Ok(0)
                }
            }
            fn write_word(&mut self, _: u32, _: u32) -> Result<(), SlaveFault> {
                Ok(())
            }
        }
        let mut bus = Bus::new(BusConfig::default());
        let m = bus.register_master("cpu");
        bus.add_slave(0, Flaky);
        bus.try_begin(m, TxnRequest::read(0, 4)).unwrap();
        let err = bus.run_to_completion(m).unwrap_err();
        assert!(matches!(err, BusError::Fault(_)));
    }

    #[test]
    fn overlapping_slaves_panic() {
        let mut bus = Bus::new(BusConfig::default());
        bus.add_slave(0, Sram::with_words(256, SramConfig::no_wait()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bus.add_slave(0x100, Sram::with_words(256, SramConfig::no_wait()));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn stats_accumulate() {
        let (mut bus, m) = bus_with_sram();
        bus.try_begin(m, TxnRequest::write(0x4000_0000, vec![0; 32]))
            .unwrap();
        bus.run_to_completion(m).unwrap();
        let s = bus.stats();
        assert_eq!(s.beats, 32);
        assert_eq!(s.grants, 2);
        assert!(s.busy_cycles <= s.cycles);
    }

    #[test]
    fn per_master_stats_attribute_grants_beats_and_contention() {
        let mut bus = Bus::new(BusConfig::default());
        let cpu = bus.register_master("cpu");
        let ocp = bus.register_master("ocp");
        bus.add_slave(0, Sram::with_words(256, SramConfig::no_wait()));
        bus.try_begin(cpu, TxnRequest::write(0, vec![0; 32]))
            .unwrap();
        bus.try_begin(ocp, TxnRequest::read(0x100, 8)).unwrap();
        while bus.poll(cpu).is_pending() || bus.poll(ocp).is_pending() {
            bus.tick();
        }
        bus.take_completion(cpu).unwrap().unwrap();
        bus.take_completion(ocp).unwrap().unwrap();
        let c = bus.master_stats(cpu);
        let o = bus.master_stats(ocp);
        assert_eq!(c.beats, 32);
        assert_eq!(o.beats, 8);
        assert_eq!(c.txns_completed, 1);
        assert_eq!(o.txns_completed, 1);
        assert_eq!(c.grants, 2); // 32 beats = 2 sub-bursts
        assert_eq!(o.grants, 1);
        // Fixed priority: the OCP waited while the CPU held the bus.
        assert!(o.contention_cycles > 0);
        assert_eq!(c.contention_cycles, 0);
        assert_eq!(
            c.contention_cycles + o.contention_cycles,
            bus.stats().contention_cycles
        );
        assert_eq!(bus.master_name(ocp), "ocp");
        assert_eq!(bus.num_masters(), 2);
    }

    #[test]
    fn idle_bus_ticks_without_work() {
        let (mut bus, m) = bus_with_sram();
        for _ in 0..10 {
            bus.tick();
        }
        assert_eq!(bus.poll(m), PortState::Idle);
        assert_eq!(bus.stats().busy_cycles, 0);
        assert_eq!(bus.now().count(), 10);
    }
}
