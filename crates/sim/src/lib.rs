//! # Cycle-level SoC simulation substrate
//!
//! The DATE 2016 Ouessant paper evaluates its coprocessor on a Leon3
//! SoC (AMBA2 AHB bus, external SRAM) synthesized onto an Artix-7 FPGA.
//! This crate rebuilds that *platform* as a cycle-level behavioral
//! simulation so the Ouessant architecture (crate `ouessant`) can be
//! exercised and measured without HDL:
//!
//! * [`clock`] — cycle bookkeeping and frequency conversion (the paper's
//!   system clock is 50 MHz);
//! * [`fifo`] — synchronous FIFOs and the paper's *variable width* FIFOs
//!   with serializing/deserializing behaviour (Figure 2's 32 ↔ 96-bit
//!   example);
//! * [`bus`] — an AHB-like system bus: arbiter, one outstanding
//!   transaction, burst transfers split into sub-bursts, per-slave wait
//!   states;
//! * [`axi`] — an AXI-lite-like alternative with independent read/write
//!   channels (the paper's announced Zynq/AXI4 integration);
//! * [`memory`] — an SRAM model with configurable first-access and
//!   sequential-beat wait states;
//! * [`trace`] — optional event tracing shared by all components;
//! * [`event`] — the [`NextEvent`] fast-forward contract: components
//!   declare their next observable event so driver loops can leap over
//!   provably-idle cycles instead of ticking through them.
//!
//! Everything is deterministic and single-threaded: hardware concurrency
//! is modeled by explicit `tick()` calls, one per clock cycle.
//!
//! ## Example
//!
//! A master moving a burst through the bus into SRAM:
//!
//! ```
//! use ouessant_sim::bus::{Bus, BusConfig, TxnRequest};
//! use ouessant_sim::memory::{Sram, SramConfig};
//!
//! let mut bus = Bus::new(BusConfig::default());
//! let master = bus.register_master("cpu");
//! bus.add_slave(0x4000_0000, Sram::with_words(0x1000, SramConfig::default()));
//!
//! bus.try_begin(master, TxnRequest::write(0x4000_0000, vec![1, 2, 3, 4]))?;
//! while bus.poll(master).is_pending() {
//!     bus.tick();
//! }
//! let done = bus.take_completion(master).expect("transaction finished")?;
//! assert!(done.cycles > 4); // 4 beats + arbitration + wait states
//! # Ok::<(), ouessant_sim::bus::BusError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axi;
pub mod bus;
pub mod clock;
pub mod event;
pub mod fifo;
pub mod memory;
pub mod rng;
pub mod trace;
pub mod vcd;

pub use axi::{AxiBus, AxiConfig, SystemBus};
pub use bus::{Bus, BusConfig, BusError, Completion, MasterId, MasterStats, TxnKind, TxnRequest};
pub use clock::{Cycle, Frequency};
pub use event::{min_horizon, NextEvent};
pub use fifo::{FifoError, SyncFifo, WidthAdapter};
pub use memory::{Sram, SramConfig};
pub use rng::XorShift64;
pub use trace::{Trace, TraceEvent};
pub use vcd::{SignalId, VcdWriter};
