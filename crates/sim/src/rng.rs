//! A small deterministic PRNG for tests and workload generation.
//!
//! The repository builds with **no registry access**, so it cannot pull
//! `rand` or `proptest`. This xorshift64* generator replaces them for
//! every randomized-but-reproducible need: the randomized invariant
//! tests that used to be property tests, and the synthetic job mixes of
//! the serving-layer examples. Seeded runs are bit-for-bit repeatable
//! across platforms, which the simulation's determinism guarantee
//! requires anyway.

/// A xorshift64* pseudo-random generator (Vigna, 2016 variant).
///
/// Not cryptographic; period 2^64 − 1; passes the statistical tests that
/// matter for spreading test inputs around their domains.
///
/// # Examples
///
/// ```
/// use ouessant_sim::rng::XorShift64;
///
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// assert!(a.gen_range_u32(10..20) >= 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed` (a zero seed is remapped, since
    /// the all-zero state is a fixed point of the xorshift recurrence).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `range` (empty ranges panic).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range_u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        let span = u64::from(range.end - range.start);
        range.start + (self.next_u64() % span) as u32
    }

    /// A uniform draw from `range` over `u64` (empty ranges panic).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// A uniform draw from `range` over `i32` (empty ranges panic).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range_i32(&mut self, range: std::ops::Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range");
        let span = (i64::from(range.end) - i64::from(range.start)) as u64;
        let off = (self.next_u64() % span) as i64;
        (i64::from(range.start) + off) as i32
    }

    /// A fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `count` uniform words.
    pub fn vec_u32(&mut self, count: usize) -> Vec<u32> {
        (0..count).map(|_| self.next_u32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn ranges_respected() {
        let mut r = XorShift64::new(1);
        for _ in 0..1000 {
            let v = r.gen_range_u32(5..17);
            assert!((5..17).contains(&v));
            let s = r.gen_range_i32(-100..100);
            assert!((-100..100).contains(&s));
        }
    }

    #[test]
    fn covers_its_range() {
        let mut r = XorShift64::new(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range_u32(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
