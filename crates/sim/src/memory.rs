//! SRAM memory model.
//!
//! The paper's Nexys4 board provides 16 MB of external SRAM; its access
//! latency (relative to the 50 MHz system clock) is what makes transfers
//! cost more than one cycle per word. [`SramConfig`] captures that as
//! first-access and sequential wait states; the defaults are calibrated
//! so a DMA64 burst through the default bus comes out near the paper's
//! ≈1.5 cycles/word (§V-B).

use crate::bus::{BusSlave, SlaveFault};

/// SRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Wait states before the first beat of a sub-burst (address setup
    /// and the external memory's access time).
    pub first_access_wait_states: u32,
    /// Wait states between subsequent beats of a sub-burst.
    pub sequential_wait_states: u32,
}

impl SramConfig {
    /// Zero-wait-state memory (an idealized on-chip BRAM).
    #[must_use]
    pub fn no_wait() -> Self {
        Self {
            first_access_wait_states: 0,
            sequential_wait_states: 0,
        }
    }

    /// The calibration used for the paper reproduction: 3 wait states on
    /// the first access of each sub-burst, single-cycle sequential beats.
    /// With the default 16-beat sub-bursts this yields
    /// `(1 grant + 1 address + 3 wait + 16 beats) / 16 = 1.31` bus cycles
    /// per word, and ≈1.4–1.5 cycles/word end-to-end once the OCP's
    /// per-instruction overhead is included — the paper's measured figure.
    #[must_use]
    pub fn external_sram() -> Self {
        Self {
            first_access_wait_states: 3,
            sequential_wait_states: 0,
        }
    }
}

impl Default for SramConfig {
    fn default() -> Self {
        Self::external_sram()
    }
}

/// A word-addressed SRAM, usable directly or as a bus slave.
///
/// # Examples
///
/// ```
/// use ouessant_sim::{Sram, SramConfig};
///
/// let mut ram = Sram::with_words(256, SramConfig::no_wait());
/// ram.store(10, 0xCAFE)?;
/// assert_eq!(ram.load(10)?, 0xCAFE);
/// # Ok::<(), ouessant_sim::bus::SlaveFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sram {
    words: Vec<u32>,
    config: SramConfig,
    name: String,
}

impl Sram {
    /// An SRAM of `words` zero-initialized 32-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    #[must_use]
    pub fn with_words(words: usize, config: SramConfig) -> Self {
        assert!(words > 0, "memory must be non-empty");
        Self {
            words: vec![0; words],
            config,
            name: "sram".to_string(),
        }
    }

    /// Renames the memory (for traces with several memories).
    #[must_use]
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Capacity in words.
    #[must_use]
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Reads the word at `index` (word-granular, un-timed).
    ///
    /// # Errors
    ///
    /// [`SlaveFault`] if `index` is out of range.
    pub fn load(&self, index: usize) -> Result<u32, SlaveFault> {
        self.words.get(index).copied().ok_or_else(|| SlaveFault {
            reason: format!("word index {index} out of range ({})", self.words.len()),
        })
    }

    /// Writes the word at `index` (word-granular, un-timed).
    ///
    /// # Errors
    ///
    /// [`SlaveFault`] if `index` is out of range.
    pub fn store(&mut self, index: usize, value: u32) -> Result<(), SlaveFault> {
        match self.words.get_mut(index) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(SlaveFault {
                reason: format!("word index {index} out of range ({})", self.words.len()),
            }),
        }
    }

    /// Copies `data` into memory starting at word `index`.
    ///
    /// # Errors
    ///
    /// [`SlaveFault`] if the slice does not fit.
    pub fn store_slice(&mut self, index: usize, data: &[u32]) -> Result<(), SlaveFault> {
        if index + data.len() > self.words.len() {
            return Err(SlaveFault {
                reason: format!(
                    "slice of {} words at index {index} exceeds memory of {} words",
                    data.len(),
                    self.words.len()
                ),
            });
        }
        self.words[index..index + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `count` words starting at word `index`.
    ///
    /// # Errors
    ///
    /// [`SlaveFault`] if the range is out of bounds.
    pub fn load_slice(&self, index: usize, count: usize) -> Result<Vec<u32>, SlaveFault> {
        if index + count > self.words.len() {
            return Err(SlaveFault {
                reason: format!(
                    "range of {count} words at index {index} exceeds memory of {} words",
                    self.words.len()
                ),
            });
        }
        Ok(self.words[index..index + count].to_vec())
    }
}

impl BusSlave for Sram {
    fn name(&self) -> &str {
        &self.name
    }

    fn size(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    fn read_word(&mut self, offset: u32) -> Result<u32, SlaveFault> {
        self.load((offset / 4) as usize)
    }

    fn write_word(&mut self, offset: u32, value: u32) -> Result<(), SlaveFault> {
        self.store((offset / 4) as usize, value)
    }

    fn first_access_wait_states(&self) -> u32 {
        self.config.first_access_wait_states
    }

    fn sequential_wait_states(&self) -> u32 {
        self.config.sequential_wait_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let mut ram = Sram::with_words(16, SramConfig::no_wait());
        ram.store(3, 42).unwrap();
        assert_eq!(ram.load(3).unwrap(), 42);
        assert_eq!(ram.load(4).unwrap(), 0);
    }

    #[test]
    fn out_of_range_faults() {
        let mut ram = Sram::with_words(4, SramConfig::no_wait());
        assert!(ram.load(4).is_err());
        assert!(ram.store(4, 0).is_err());
    }

    #[test]
    fn slice_helpers() {
        let mut ram = Sram::with_words(8, SramConfig::no_wait());
        ram.store_slice(2, &[1, 2, 3]).unwrap();
        assert_eq!(ram.load_slice(2, 3).unwrap(), vec![1, 2, 3]);
        assert!(ram.store_slice(6, &[1, 2, 3]).is_err());
        assert!(ram.load_slice(6, 3).is_err());
    }

    #[test]
    fn bus_slave_word_addressing() {
        let mut ram = Sram::with_words(8, SramConfig::no_wait());
        ram.write_word(12, 99).unwrap();
        assert_eq!(ram.read_word(12).unwrap(), 99);
        assert_eq!(ram.load(3).unwrap(), 99);
        assert_eq!(BusSlave::size(&ram), 32);
    }

    #[test]
    fn external_sram_calibration() {
        let cfg = SramConfig::external_sram();
        assert_eq!(cfg.first_access_wait_states, 3);
        assert_eq!(cfg.sequential_wait_states, 0);
        assert_eq!(SramConfig::default(), cfg);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_memory_panics() {
        let _ = Sram::with_words(0, SramConfig::no_wait());
    }
}
