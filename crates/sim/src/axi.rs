//! An AXI4-like alternative system bus with independent read and write
//! channels.
//!
//! The paper's §VI lists "complete Zynq (AXI4) integration" as work in
//! progress; the Ouessant interface was designed so that only the
//! bus-specific FSMs need replacing. [`AxiBus`] is that other bus: unlike
//! the AHB-like [`crate::bus::Bus`], it has **separate read and write
//! channels** that operate concurrently, address/data channel handshakes
//! of two cycles, and bursts that are not split into sub-bursts (AXI4
//! supports up to 256 beats per burst).
//!
//! Both buses implement [`SystemBus`], so the Ouessant bus interface (in
//! the `ouessant` crate) runs unmodified on either — reproducing the
//! paper's portability claim as a compile-time fact.

use std::fmt;

use crate::bus::{
    Addr, BusError, BusSlave, BusStats, Completion, MasterId, PortState, TxnKind, TxnRequest,
};
use crate::clock::Cycle;
use crate::trace::Trace;

/// Object-safe façade over a system bus, implemented by the AHB-like
/// [`crate::bus::Bus`] and the AXI-like [`AxiBus`].
///
/// The Ouessant bus interface is written against this trait; porting the
/// OCP to a new interconnect means implementing `SystemBus` (the "bus
/// master FSM / bus slave FSM" box of the paper's Figure 3), nothing
/// else.
pub trait SystemBus {
    /// Registers a master and returns its id.
    fn register_master(&mut self, name: &str) -> MasterId;

    /// Maps a boxed slave at `base`.
    fn add_slave_boxed(&mut self, base: Addr, device: Box<dyn BusSlave>);

    /// Raises a bus request.
    ///
    /// # Errors
    ///
    /// See [`BusError`].
    fn try_begin(&mut self, master: MasterId, req: TxnRequest) -> Result<(), BusError>;

    /// Advances one clock cycle.
    fn tick(&mut self);

    /// Current simulation time.
    fn now(&self) -> Cycle;

    /// Samples a master port.
    fn poll(&self, master: MasterId) -> PortState;

    /// Retires a finished transaction.
    fn take_completion(&mut self, master: MasterId) -> Option<Result<Completion, BusError>>;

    /// Un-timed read for test setup / inspection.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Unmapped`] or a slave fault.
    fn debug_read(&mut self, addr: Addr) -> Result<u32, BusError>;

    /// Un-timed write for test setup.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Unmapped`] or a slave fault.
    fn debug_write(&mut self, addr: Addr, value: u32) -> Result<(), BusError>;

    /// Aggregate statistics.
    fn stats(&self) -> BusStats;
}

impl SystemBus for crate::bus::Bus {
    fn register_master(&mut self, name: &str) -> MasterId {
        crate::bus::Bus::register_master(self, name)
    }

    fn add_slave_boxed(&mut self, base: Addr, device: Box<dyn BusSlave>) {
        crate::bus::Bus::add_slave(self, base, BoxedSlave(device));
    }

    fn try_begin(&mut self, master: MasterId, req: TxnRequest) -> Result<(), BusError> {
        crate::bus::Bus::try_begin(self, master, req)
    }

    fn tick(&mut self) {
        crate::bus::Bus::tick(self);
    }

    fn now(&self) -> Cycle {
        crate::bus::Bus::now(self)
    }

    fn poll(&self, master: MasterId) -> PortState {
        crate::bus::Bus::poll(self, master)
    }

    fn take_completion(&mut self, master: MasterId) -> Option<Result<Completion, BusError>> {
        crate::bus::Bus::take_completion(self, master)
    }

    fn debug_read(&mut self, addr: Addr) -> Result<u32, BusError> {
        crate::bus::Bus::debug_read(self, addr)
    }

    fn debug_write(&mut self, addr: Addr, value: u32) -> Result<(), BusError> {
        crate::bus::Bus::debug_write(self, addr, value)
    }

    fn stats(&self) -> BusStats {
        crate::bus::Bus::stats(self)
    }
}

/// Adapter letting a `Box<dyn BusSlave>` satisfy `impl BusSlave`.
struct BoxedSlave(Box<dyn BusSlave>);

impl BusSlave for BoxedSlave {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn size(&self) -> u32 {
        self.0.size()
    }
    fn read_word(&mut self, offset: u32) -> Result<u32, crate::bus::SlaveFault> {
        self.0.read_word(offset)
    }
    fn write_word(&mut self, offset: u32, value: u32) -> Result<(), crate::bus::SlaveFault> {
        self.0.write_word(offset, value)
    }
    fn first_access_wait_states(&self) -> u32 {
        self.0.first_access_wait_states()
    }
    fn sequential_wait_states(&self) -> u32 {
        self.0.sequential_wait_states()
    }
}

/// AXI bus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiConfig {
    /// Cycles consumed by the address-channel handshake before the first
    /// beat (ARVALID/ARREADY or AWVALID/AWREADY plus one pipeline stage).
    pub channel_setup_cycles: u32,
}

impl Default for AxiConfig {
    fn default() -> Self {
        Self {
            channel_setup_cycles: 2,
        }
    }
}

#[derive(Debug)]
struct Slot {
    req: TxnRequest,
    beats_done: u16,
    read_data: Vec<u32>,
    issued_at: Cycle,
    slave_idx: usize,
}

#[derive(Debug)]
struct ChannelActive {
    master: usize,
    setup_left: u32,
    wait_left: u32,
}

/// One direction (read or write) of the AXI interconnect.
#[derive(Debug, Default)]
struct Channel {
    slots: Vec<Option<Slot>>,
    active: Option<ChannelActive>,
    beats: u64,
    grants: u64,
}

struct SlaveEntry {
    base: Addr,
    size: u32,
    device: Box<dyn BusSlave>,
}

impl fmt::Debug for SlaveEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlaveEntry")
            .field("base", &format_args!("{:#010x}", self.base))
            .field("size", &self.size)
            .field("device", &self.device.name())
            .finish()
    }
}

/// The AXI-like bus: independent, concurrently active read and write
/// channels.
///
/// # Examples
///
/// A read and a write proceeding in the same cycles:
///
/// ```
/// use ouessant_sim::axi::{AxiBus, AxiConfig, SystemBus};
/// use ouessant_sim::bus::TxnRequest;
/// use ouessant_sim::memory::{Sram, SramConfig};
///
/// let mut bus = AxiBus::new(AxiConfig::default());
/// let m = bus.register_master("dma");
/// bus.add_slave_boxed(0, Box::new(Sram::with_words(256, SramConfig::no_wait())));
///
/// bus.try_begin(m, TxnRequest::write(0x00, vec![7; 16]))?;
/// bus.try_begin(m, TxnRequest::read(0x80, 16))?; // concurrent: other channel
/// while bus.poll(m).is_pending() {
///     bus.tick();
/// }
/// # Ok::<(), ouessant_sim::bus::BusError>(())
/// ```
#[derive(Debug)]
pub struct AxiBus {
    config: AxiConfig,
    now: Cycle,
    master_names: Vec<String>,
    read: Channel,
    write: Channel,
    completions: Vec<Vec<Result<Completion, BusError>>>,
    slaves: Vec<SlaveEntry>,
    stats: BusStats,
    /// Shared trace (disabled by default).
    pub trace: Trace,
}

impl AxiBus {
    /// Creates an empty AXI bus.
    #[must_use]
    pub fn new(config: AxiConfig) -> Self {
        Self {
            config,
            now: Cycle::ZERO,
            master_names: Vec::new(),
            read: Channel::default(),
            write: Channel::default(),
            completions: Vec::new(),
            slaves: Vec::new(),
            stats: BusStats::default(),
            trace: Trace::disabled(),
        }
    }

    fn decode(&self, addr: Addr) -> Result<usize, BusError> {
        self.slaves
            .iter()
            .position(|s| addr >= s.base && u64::from(addr) < s.base as u64 + s.size as u64)
            .ok_or(BusError::Unmapped { addr })
    }

    fn validate(&self, req: &TxnRequest) -> Result<usize, BusError> {
        if !req.addr().is_multiple_of(4) {
            return Err(BusError::Unaligned { addr: req.addr() });
        }
        if req.beats() == 0 {
            return Err(BusError::EmptyBurst);
        }
        let idx = self.decode(req.addr())?;
        let s = &self.slaves[idx];
        if u64::from(req.addr()) + u64::from(req.beats()) * 4 > s.base as u64 + s.size as u64 {
            return Err(BusError::CrossesSlaveBoundary {
                addr: req.addr(),
                beats: req.beats(),
            });
        }
        Ok(idx)
    }

    fn tick_channel(
        now: Cycle,
        kind: TxnKind,
        channel: &mut Channel,
        slaves: &mut [SlaveEntry],
        completions: &mut [Vec<Result<Completion, BusError>>],
        stats: &mut BusStats,
    ) {
        if channel.active.is_none() {
            if let Some(master) = channel.slots.iter().position(Option::is_some) {
                channel.grants += 1;
                stats.grants += 1;
                channel.active = Some(ChannelActive {
                    master,
                    setup_left: 0,       // setup counted below via config at issue
                    wait_left: u32::MAX, // sentinel: initialize on first processing tick
                });
                let slot = channel.slots[master].as_ref().expect("present");
                let first_ws = slaves[slot.slave_idx].device.first_access_wait_states();
                let active = channel.active.as_mut().expect("just set");
                active.wait_left = first_ws;
                // The grant itself costs this cycle; setup follows.
                return;
            }
            return;
        }
        let active = channel.active.as_mut().expect("checked");
        if active.setup_left > 0 {
            active.setup_left -= 1;
            return;
        }
        if active.wait_left > 0 {
            active.wait_left -= 1;
            return;
        }
        // Complete one beat.
        let master = active.master;
        let slot = channel.slots[master].as_mut().expect("active slot");
        let beat_addr = slot.req.addr() + u32::from(slot.beats_done) * 4;
        let entry = &mut slaves[slot.slave_idx];
        let offset = beat_addr - entry.base;
        let fault = match kind {
            TxnKind::Read => match entry.device.read_word(offset) {
                Ok(v) => {
                    slot.read_data.push(v);
                    None
                }
                Err(e) => Some(e),
            },
            TxnKind::Write => {
                let value = slot.req.write_data()[slot.beats_done as usize];
                entry.device.write_word(offset, value).err()
            }
        };
        channel.beats += 1;
        stats.beats += 1;
        slot.beats_done += 1;

        if let Some(fault) = fault {
            channel.slots[master] = None;
            channel.active = None;
            completions[master].push(Err(BusError::Fault(fault)));
            return;
        }
        if slot.beats_done == slot.req.beats() {
            let slot = channel.slots[master].take().expect("present");
            channel.active = None;
            completions[master].push(Ok(Completion {
                kind,
                addr: slot.req.addr(),
                data: slot.read_data,
                issued_at: slot.issued_at,
                completed_at: now,
                cycles: now.count() - slot.issued_at.count(),
            }));
        } else {
            active.wait_left = slaves[channel.slots[master].as_ref().expect("present").slave_idx]
                .device
                .sequential_wait_states();
        }
    }

    /// Per-channel beat counts `(read, write)`, for tests.
    #[must_use]
    pub fn channel_beats(&self) -> (u64, u64) {
        (self.read.beats, self.write.beats)
    }
}

impl crate::event::NextEvent for AxiBus {
    /// `Some(1)` while either channel is active or any master has a
    /// transaction queued on either channel; `None` when both channels
    /// are drained — idle ticks only advance `now` and the cycle
    /// counter (pending completions are inert until a master collects
    /// them).
    fn horizon(&self) -> Option<Cycle> {
        let busy = self.read.active.is_some()
            || self.write.active.is_some()
            || self.read.slots.iter().any(Option::is_some)
            || self.write.slots.iter().any(Option::is_some);
        if busy {
            Some(Cycle::new(1))
        } else {
            None
        }
    }

    fn advance(&mut self, cycles: Cycle) {
        debug_assert!(
            self.read.active.is_none()
                && self.write.active.is_none()
                && self.read.slots.iter().all(Option::is_none)
                && self.write.slots.iter().all(Option::is_none),
            "axi bus advanced across a non-idle window"
        );
        self.now += cycles;
        self.stats.cycles += cycles.count();
    }
}

impl SystemBus for AxiBus {
    fn register_master(&mut self, name: &str) -> MasterId {
        self.master_names.push(name.to_string());
        self.read.slots.push(None);
        self.write.slots.push(None);
        self.completions.push(Vec::new());
        MasterId::from_index(self.master_names.len() - 1)
    }

    fn add_slave_boxed(&mut self, base: Addr, device: Box<dyn BusSlave>) {
        assert_eq!(base % 4, 0, "slave base must be word-aligned");
        let size = device.size();
        assert!(size > 0, "slave window must be non-empty");
        let end = base as u64 + size as u64;
        for s in &self.slaves {
            let s_end = s.base as u64 + s.size as u64;
            assert!(
                end <= s.base as u64 || s_end <= base as u64,
                "slave window overlaps {}",
                s.device.name()
            );
        }
        self.slaves.push(SlaveEntry { base, size, device });
    }

    fn try_begin(&mut self, master: MasterId, req: TxnRequest) -> Result<(), BusError> {
        let m = master.index();
        if m >= self.master_names.len() {
            return Err(BusError::UnknownMaster);
        }
        let channel = match req.kind() {
            TxnKind::Read => &mut self.read,
            TxnKind::Write => &mut self.write,
        };
        if channel.slots[m].is_some() {
            return Err(BusError::Busy);
        }
        let slave_idx = self.validate(&req)?;
        let channel = match req.kind() {
            TxnKind::Read => &mut self.read,
            TxnKind::Write => &mut self.write,
        };
        channel.slots[m] = Some(Slot {
            read_data: Vec::with_capacity(if req.kind() == TxnKind::Read {
                req.beats() as usize
            } else {
                0
            }),
            req,
            beats_done: 0,
            issued_at: self.now,
            slave_idx,
        });
        // Channel setup cost is charged on grant.
        if let Some(active) = channel.active.as_mut() {
            let _ = active; // another master owns the channel; nothing to do
        }
        Ok(())
    }

    fn tick(&mut self) {
        self.now = self.now.next();
        self.stats.cycles += 1;
        // Charge the channel-setup cycles by injecting them at grant
        // time: a freshly granted active entry gets setup_left set here.
        let setup = self.config.channel_setup_cycles;
        let pre_read_active = self.read.active.is_none();
        let pre_write_active = self.write.active.is_none();
        Self::tick_channel(
            self.now,
            TxnKind::Read,
            &mut self.read,
            &mut self.slaves,
            &mut self.completions,
            &mut self.stats,
        );
        Self::tick_channel(
            self.now,
            TxnKind::Write,
            &mut self.write,
            &mut self.slaves,
            &mut self.completions,
            &mut self.stats,
        );
        if pre_read_active {
            if let Some(a) = self.read.active.as_mut() {
                a.setup_left = setup;
            }
        }
        if pre_write_active {
            if let Some(a) = self.write.active.as_mut() {
                a.setup_left = setup;
            }
        }
        if self.read.active.is_some() || self.write.active.is_some() {
            self.stats.busy_cycles += 1;
        }
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn poll(&self, master: MasterId) -> PortState {
        let m = master.index();
        if !self.completions[m].is_empty() {
            PortState::Complete
        } else if self.read.slots[m].is_some() || self.write.slots[m].is_some() {
            PortState::Pending
        } else {
            PortState::Idle
        }
    }

    fn take_completion(&mut self, master: MasterId) -> Option<Result<Completion, BusError>> {
        let m = master.index();
        if self.completions[m].is_empty() {
            None
        } else {
            Some(self.completions[m].remove(0))
        }
    }

    fn debug_read(&mut self, addr: Addr) -> Result<u32, BusError> {
        let idx = self.decode(addr)?;
        let offset = addr - self.slaves[idx].base;
        self.slaves[idx]
            .device
            .read_word(offset)
            .map_err(BusError::Fault)
    }

    fn debug_write(&mut self, addr: Addr, value: u32) -> Result<(), BusError> {
        let idx = self.decode(addr)?;
        let offset = addr - self.slaves[idx].base;
        self.slaves[idx]
            .device
            .write_word(offset, value)
            .map_err(BusError::Fault)
    }

    fn stats(&self) -> BusStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Sram, SramConfig};

    fn axi_with_sram() -> (AxiBus, MasterId) {
        let mut bus = AxiBus::new(AxiConfig::default());
        let m = bus.register_master("dma");
        bus.add_slave_boxed(0, Box::new(Sram::with_words(1024, SramConfig::no_wait())));
        (bus, m)
    }

    fn run_until_idle(bus: &mut AxiBus, m: MasterId) {
        let mut fuel = 100_000;
        while bus.poll(m).is_pending() {
            bus.tick();
            fuel -= 1;
            assert!(fuel > 0);
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut bus, m) = axi_with_sram();
        bus.try_begin(m, TxnRequest::write(0x10, vec![1, 2, 3]))
            .unwrap();
        run_until_idle(&mut bus, m);
        bus.take_completion(m).unwrap().unwrap();
        bus.try_begin(m, TxnRequest::read(0x10, 3)).unwrap();
        run_until_idle(&mut bus, m);
        let c = bus.take_completion(m).unwrap().unwrap();
        assert_eq!(c.data, vec![1, 2, 3]);
    }

    #[test]
    fn read_and_write_channels_overlap() {
        let (mut bus, m) = axi_with_sram();
        for i in 0..64u32 {
            bus.debug_write(0x400 + i * 4, i).unwrap();
        }
        bus.try_begin(m, TxnRequest::write(0x000, vec![9; 64]))
            .unwrap();
        bus.try_begin(m, TxnRequest::read(0x400, 64)).unwrap();
        run_until_idle(&mut bus, m);
        let total = bus.now().count();
        // 64 beats each; channels run concurrently, so total is far less
        // than a serialized 128+ beats.
        assert!(total < 100, "channels should overlap, took {total}");
        let (r, w) = bus.channel_beats();
        assert_eq!((r, w), (64, 64));
    }

    #[test]
    fn long_burst_not_split() {
        let (mut bus, m) = axi_with_sram();
        bus.try_begin(m, TxnRequest::read(0, 256)).unwrap();
        run_until_idle(&mut bus, m);
        bus.take_completion(m).unwrap().unwrap();
        // One grant for 256 beats (no sub-burst splitting).
        assert_eq!(bus.stats().grants, 1);
    }

    #[test]
    fn per_channel_busy_rejected() {
        let (mut bus, m) = axi_with_sram();
        bus.try_begin(m, TxnRequest::read(0, 4)).unwrap();
        assert_eq!(
            bus.try_begin(m, TxnRequest::read(0, 4)),
            Err(BusError::Busy)
        );
        // But a write is a different channel:
        assert!(bus.try_begin(m, TxnRequest::write(0, vec![1])).is_ok());
    }

    #[test]
    fn validation_mirrors_ahb() {
        let (mut bus, m) = axi_with_sram();
        assert_eq!(
            bus.try_begin(m, TxnRequest::read_word(2)),
            Err(BusError::Unaligned { addr: 2 })
        );
        assert_eq!(
            bus.try_begin(m, TxnRequest::read(0, 0)),
            Err(BusError::EmptyBurst)
        );
        assert_eq!(
            bus.try_begin(m, TxnRequest::read_word(0x9000_0000)),
            Err(BusError::Unmapped { addr: 0x9000_0000 })
        );
    }

    #[test]
    fn system_bus_trait_object_works_for_both() {
        fn exercise(bus: &mut dyn SystemBus) {
            let m = bus.register_master("m");
            bus.add_slave_boxed(0, Box::new(Sram::with_words(64, SramConfig::no_wait())));
            bus.try_begin(m, TxnRequest::write_word(0, 5)).unwrap();
            let mut fuel = 1000;
            while bus.poll(m).is_pending() {
                bus.tick();
                fuel -= 1;
                assert!(fuel > 0);
            }
            bus.take_completion(m).unwrap().unwrap();
            assert_eq!(bus.debug_read(0).unwrap(), 5);
        }
        exercise(&mut crate::bus::Bus::new(crate::bus::BusConfig::default()));
        exercise(&mut AxiBus::new(AxiConfig::default()));
    }
}
