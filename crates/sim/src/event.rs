//! Event-horizon fast-forwarding: skip provably-idle cycles in O(1).
//!
//! A cycle-level simulation of the paper's platform spends most of its
//! host time ticking FSMs that *cannot* change observable state for a
//! statically-knowable number of cycles: a DMA burst with `wait_left`
//! cycles before its next beat, a RAC counting down its Table I compute
//! latency, a DPR slot streaming a bitstream through the ICAP, a farm
//! worker parked in retry backoff or quarantine cooldown. [`NextEvent`]
//! lets each component *declare* that window so a driver loop can leap
//! over it instead of looping through it — the same lever fast ISA
//! simulators pull to beat naive interpreters, applied to a SoC.
//!
//! # Contract
//!
//! For a component whose per-cycle behaviour is `tick()`:
//!
//! * [`NextEvent::horizon`] returns the earliest *future* cycle, as an
//!   offset from now, at which the component's observable state can
//!   change. `Some(k)` (with `k ≥ 1`) means the next `k - 1` ticks are
//!   **pure**: they only update monotonic counters and countdowns in a
//!   way that [`NextEvent::advance`] can replay in O(1), and the k-th
//!   tick is the first that may do anything else (retire an FSM state,
//!   move data, raise an interrupt, win arbitration …). `Some(1)` is
//!   always a safe answer for a busy component — it simply forces the
//!   driver to single-step. `None` means the component is quiescent: no
//!   number of ticks will ever change its observable state (it still
//!   tolerates [`NextEvent::advance`], which must replay idle ticks).
//! * [`NextEvent::advance`]`(n)` bulk-applies `n` ticks under the
//!   promise that all of them are pure, i.e. `n ≤ horizon() - 1` (or
//!   the component is quiescent). After `advance(n)` the component must
//!   be **bit-identical** to the state after `n` real `tick()` calls —
//!   including cycle counters, utilization statistics, and countdowns —
//!   so that a fast-forwarded run and a cycle-by-cycle run can never be
//!   told apart.
//!
//! A driver combines horizons with [`min_horizon`] (treating `None` as
//! +∞), leaps `min - 1` cycles with `advance`, then executes the event
//! cycle with a real `tick()`. Components may *underestimate* their
//! horizon (costing speed, never correctness); they must never
//! overestimate it.

use crate::clock::Cycle;

/// A component that can report when its next observable event occurs
/// and bulk-apply the idle cycles before it.
///
/// See the [module documentation](self) for the exact contract.
pub trait NextEvent {
    /// The earliest future cycle (as a 1-based offset from now) at
    /// which this component's observable state can change.
    ///
    /// `Some(1)` = "may change on the very next tick" (single-step);
    /// `Some(k)` = "ticks `1..k` are pure, tick `k` is the event";
    /// `None` = quiescent (no future tick changes observable state).
    fn horizon(&self) -> Option<Cycle>;

    /// Bulk-applies `cycles` pure ticks in O(1).
    ///
    /// Callers must guarantee `cycles ≤ horizon() - 1` (quiescent
    /// components accept any count). Afterwards the component is
    /// bit-identical to having been `tick()`ed `cycles` times.
    fn advance(&mut self, cycles: Cycle);
}

/// Combines two horizons, treating `None` as "never" (+∞).
///
/// The result is the earlier of the two events: the horizon a driver
/// must respect when it owns both components.
#[must_use]
pub fn min_horizon(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_horizon_treats_none_as_infinity() {
        let c = |n| Some(Cycle::new(n));
        assert_eq!(min_horizon(c(5), c(3)), c(3));
        assert_eq!(min_horizon(c(5), None), c(5));
        assert_eq!(min_horizon(None, c(7)), c(7));
        assert_eq!(min_horizon(None, None), None);
    }
}
