//! What the analyzer is told about the memory map.
//!
//! Bank sizes are not part of the microcode — they are a property of
//! the SoC integration (the driver's buffer carve-up, the farm's
//! per-job leases). [`VerifyConfig`] carries that knowledge into the
//! analysis; [`VerifyConfig::default`] models the full 14-bit
//! addressable window per bank, which is the weakest check any
//! integration can rely on.

use ouessant_isa::operands::{MAX_OFFSET, NUM_BANKS};

/// What the analyzer may assume about one memory bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankModel {
    /// No size information: only the 14-bit offset field bounds apply.
    Unbounded,
    /// The bank holds exactly this many 32-bit words.
    Words(u32),
    /// The bank is not wired up at all; touching it is an error.
    Unmapped,
}

impl BankModel {
    /// The word capacity to check transfers against, if any.
    #[must_use]
    pub fn capacity(&self) -> Option<u32> {
        match *self {
            BankModel::Unbounded => Some(MAX_OFFSET + 1),
            BankModel::Words(n) => Some(n),
            BankModel::Unmapped => None,
        }
    }
}

/// The memory-map and FIFO knowledge for one [`crate::verify`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Per-bank size model.
    pub banks: [BankModel; NUM_BANKS as usize],
    /// FIFO depth in words, if known: a burst longer than this can
    /// never complete (the DMA blocks on FIFO space for the whole
    /// burst).
    pub fifo_depth: Option<u32>,
}

impl Default for VerifyConfig {
    /// Every bank spans the full 14-bit window (16384 words), FIFO
    /// depth unknown.
    fn default() -> Self {
        Self {
            banks: [BankModel::Words(MAX_OFFSET + 1); NUM_BANKS as usize],
            fifo_depth: None,
        }
    }
}

impl VerifyConfig {
    /// No size information at all: bounds checking is reduced to the
    /// offset-field range the ISA already enforces.
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            banks: [BankModel::Unbounded; NUM_BANKS as usize],
            fifo_depth: None,
        }
    }

    /// The standard job memory map used by the driver and the farm:
    /// bank 0 holds the program, bank 1 the input, bank 2 the output,
    /// banks 3–7 are unmapped.
    #[must_use]
    pub fn job_map(prog_words: u32, input_words: u32, output_words: u32) -> Self {
        let mut banks = [BankModel::Unmapped; NUM_BANKS as usize];
        banks[0] = BankModel::Words(prog_words);
        banks[1] = BankModel::Words(input_words);
        banks[2] = BankModel::Words(output_words);
        Self {
            banks,
            fifo_depth: None,
        }
    }

    /// Sets the FIFO depth to check bursts against.
    #[must_use]
    pub fn with_fifo_depth(mut self, words: u32) -> Self {
        self.fifo_depth = Some(words);
        self
    }

    /// Sets one bank's model.
    #[must_use]
    pub fn with_bank(mut self, bank: usize, model: BankModel) -> Self {
        self.banks[bank] = model;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_full_window() {
        let c = VerifyConfig::default();
        assert_eq!(c.banks[0].capacity(), Some(16384));
        assert_eq!(c.fifo_depth, None);
    }

    #[test]
    fn job_map_shapes() {
        let c = VerifyConfig::job_map(1024, 512, 256).with_fifo_depth(64);
        assert_eq!(c.banks[1], BankModel::Words(512));
        assert_eq!(c.banks[5].capacity(), None);
        assert_eq!(c.fifo_depth, Some(64));
    }
}
