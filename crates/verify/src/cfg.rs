//! Control-flow graph over the extended Ouessant ISA.
//!
//! The only branch instruction is `djnz`, which either falls through
//! (counter exhausted) or jumps to its absolute target; `eop` and
//! `halt` terminate the program. The CFG is therefore a vector of
//! successor lists plus a reachability bitmap computed from entry 0 —
//! enough for the worklist dataflow in [`crate::hazards`] and for
//! dead-code reporting.

use ouessant_isa::{Instruction, Program};

use crate::diag::{DiagKind, Diagnostic, Severity};

/// The control-flow graph of one program.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG and computes reachability from instruction 0.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let len = program.len();
        let mut succs = Vec::with_capacity(len);
        for (pc, insn) in program.iter().enumerate() {
            let s = match insn {
                Instruction::Eop | Instruction::Halt => Vec::new(),
                Instruction::Djnz { target, .. } => {
                    // Fall through on an exhausted counter, branch
                    // otherwise; both edges always exist statically.
                    let mut s = Vec::with_capacity(2);
                    if pc + 1 < len {
                        s.push(pc + 1);
                    }
                    let t = target.index();
                    if t < len && !s.contains(&t) {
                        s.push(t);
                    }
                    s
                }
                _ => {
                    if pc + 1 < len {
                        vec![pc + 1]
                    } else {
                        Vec::new()
                    }
                }
            };
            succs.push(s);
        }

        let mut reachable = vec![false; len];
        let mut stack = vec![0usize];
        while let Some(pc) = stack.pop() {
            if pc >= len || reachable[pc] {
                continue;
            }
            reachable[pc] = true;
            stack.extend(succs[pc].iter().copied());
        }

        Self { succs, reachable }
    }

    /// Successor program counters of `pc`.
    #[must_use]
    pub fn successors(&self, pc: usize) -> &[usize] {
        &self.succs[pc]
    }

    /// Whether any path from entry reaches `pc`.
    #[must_use]
    pub fn is_reachable(&self, pc: usize) -> bool {
        self.reachable.get(pc).copied().unwrap_or(false)
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the program is empty (cannot happen for a validated
    /// [`Program`], but keeps clippy's `len`-without-`is_empty` happy).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Dead-code warnings: one per unreachable instruction.
    pub(crate) fn dead_code(&self, program: &Program) -> Vec<Diagnostic> {
        program
            .iter()
            .enumerate()
            .filter(|(pc, _)| !self.is_reachable(*pc))
            .map(|(pc, insn)| Diagnostic {
                severity: Severity::Warning,
                kind: DiagKind::DeadCode,
                index: pc,
                message: format!("unreachable instruction `{insn}`"),
                hint: "delete it, or fix the branch/terminator that skips it".into(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouessant_isa::assemble;

    #[test]
    fn straight_line_cfg() {
        let p = assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.successors(0), &[1]);
        assert_eq!(cfg.successors(3), &[] as &[usize]);
        assert!((0..4).all(|pc| cfg.is_reachable(pc)));
        assert!(cfg.dead_code(&p).is_empty());
    }

    #[test]
    fn djnz_has_two_successors() {
        let p = assemble("ldc R0,4\nloop:\nmvtcr BANK1,O0,DMA64,FIFO0\ndjnz R0,loop\neop").unwrap();
        let cfg = Cfg::build(&p);
        let mut s = cfg.successors(2).to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![1, 3]);
    }

    #[test]
    fn code_after_halt_is_dead() {
        let p = assemble("halt\nmvtc BANK1,0,DMA8,FIFO0\neop").unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.is_reachable(0));
        assert!(!cfg.is_reachable(1));
        assert!(!cfg.is_reachable(2), "the eop itself is unreachable");
        let dead = cfg.dead_code(&p);
        assert_eq!(dead.len(), 2);
        assert!(dead.iter().all(|d| d.kind == DiagKind::DeadCode));
    }
}
