//! `ouas` — the Ouessant microcode assembler/disassembler/verifier.
//!
//! ```text
//! ouas asm <source.s>          assemble; hex words on stdout
//! ouas asm <source.s> -o <f>   assemble into a file
//! ouas dis <words.hex>         disassemble hex words (one per line)
//! ouas check <source.s>        assemble and report statistics only
//! ouas verify <source.s>       run the static analyzer and report
//! ```
//!
//! `asm` and `check` accept `--verify` to run the analyzer as part of
//! assembly; `verify` runs it standalone (on microcode source, or on
//! an already-assembled `.hex` word file). Analyzer flags:
//!
//! ```text
//! --deny-warnings      treat warnings as errors (non-zero exit)
//! --json               machine-readable diagnostics
//! --bank N=WORDS       declare bank N as WORDS words
//! --bank N=unmapped    declare bank N absent (touching it is an error)
//! --fifo-depth WORDS   declare the FIFO depth
//! ```
//!
//! Exit status: 0 clean, 1 on errors (or warnings under
//! `--deny-warnings`), 2 on usage errors.
//!
//! Hex files hold one 32-bit word per line (`0x`-prefixed or bare hex);
//! `#`/`//` comments and blank lines are ignored.

use std::fs;
use std::process::ExitCode;

use ouessant_isa::{assemble, disassemble, Program};
use ouessant_verify::{verify, Analysis, BankModel, VerifyConfig};

fn usage() -> ExitCode {
    eprintln!("usage: ouas asm <source.s> [-o <out.hex>] [--verify] [<analyzer flags>]");
    eprintln!("       ouas dis <words.hex>");
    eprintln!("       ouas check <source.s> [--verify] [<analyzer flags>]");
    eprintln!("       ouas verify <source.s | words.hex> [<analyzer flags>]");
    eprintln!("analyzer flags: --deny-warnings --json --bank N=<WORDS|unmapped|unbounded>");
    eprintln!("                --fifo-depth <WORDS>");
    ExitCode::from(2)
}

fn parse_hex_file(text: &str) -> Result<Vec<u32>, String> {
    let mut words = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let mut line = raw;
        for marker in ["//", "#"] {
            if let Some(pos) = line.find(marker) {
                line = &line[..pos];
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let hex = line
            .strip_prefix("0x")
            .or_else(|| line.strip_prefix("0X"))
            .unwrap_or(line);
        let word = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("line {}: `{line}` is not a hex word", i + 1))?;
        words.push(word);
    }
    Ok(words)
}

/// Analyzer-related options shared by `asm`, `check` and `verify`.
struct Options {
    run_verify: bool,
    deny_warnings: bool,
    json: bool,
    config: VerifyConfig,
}

impl Options {
    fn new() -> Self {
        Self {
            run_verify: false,
            deny_warnings: false,
            json: false,
            config: VerifyConfig::default(),
        }
    }
}

fn parse_bank_flag(spec: &str, config: &mut VerifyConfig) -> Result<(), String> {
    let (bank, model) = spec
        .split_once('=')
        .ok_or_else(|| format!("--bank expects N=WORDS, got `{spec}`"))?;
    let bank: usize = bank
        .parse()
        .map_err(|_| format!("`{bank}` is not a bank number"))?;
    if bank >= config.banks.len() {
        return Err(format!("bank {bank} out of range (0..=7)"));
    }
    config.banks[bank] = match model {
        "unmapped" => BankModel::Unmapped,
        "unbounded" => BankModel::Unbounded,
        words => BankModel::Words(
            words
                .parse()
                .map_err(|_| format!("`{words}` is not a word count"))?,
        ),
    };
    Ok(())
}

/// Splits `rest` into positional arguments and analyzer options.
fn parse_options(rest: &[String]) -> Result<(Vec<&String>, Options), String> {
    let mut positional = Vec::new();
    let mut opts = Options::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--verify" => opts.run_verify = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--bank" => {
                let spec = it.next().ok_or("--bank needs an argument")?;
                parse_bank_flag(spec, &mut opts.config)?;
            }
            "--fifo-depth" => {
                let words = it.next().ok_or("--fifo-depth needs an argument")?;
                opts.config.fifo_depth = Some(
                    words
                        .parse()
                        .map_err(|_| format!("`{words}` is not a word count"))?,
                );
            }
            _ => positional.push(arg),
        }
    }
    Ok((positional, opts))
}

/// Runs the analyzer and prints its findings. Returns the analysis so
/// callers can decide the exit status.
fn report_analysis(input: &str, program: &Program, opts: &Options) -> Analysis {
    let analysis = verify(program, &opts.config);
    if opts.json {
        println!("{}", analysis.to_json());
    } else if !analysis.is_clean() {
        for d in analysis.diagnostics() {
            eprintln!("ouas: {input}: {d}");
        }
        eprintln!(
            "ouas: {input}: {} error(s), {} warning(s)",
            analysis.error_count(),
            analysis.warning_count()
        );
    }
    analysis
}

/// Whether the diagnostics allow a passing exit under `opts`.
fn passes(analysis: &Analysis, opts: &Options) -> bool {
    !(analysis.has_errors() || (opts.deny_warnings && analysis.warning_count() > 0))
}

fn load_program(input: &str, source: &str) -> Result<Program, String> {
    if input.ends_with(".hex") {
        let words = parse_hex_file(source)?;
        Program::from_words(&words).map_err(|e| e.to_string())
    } else {
        assemble(source).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    match cmd {
        "asm" | "check" => {
            let (positional, opts) = match parse_options(rest) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("ouas: {e}");
                    return usage();
                }
            };
            let (input, output) = match positional.as_slice() {
                [input] => (*input, None),
                [input, flag, out] if *flag == "-o" => (*input, Some(*out)),
                _ => return usage(),
            };
            let source = match fs::read_to_string(input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ouas: cannot read {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match assemble(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("ouas: {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if opts.run_verify && !passes(&report_analysis(input, &program, &opts), &opts) {
                return ExitCode::FAILURE;
            }
            if cmd == "check" {
                eprintln!(
                    "{input}: {} instructions, {} data words transferred",
                    program.len(),
                    program.static_words_transferred()
                );
                return ExitCode::SUCCESS;
            }
            let hex: String = program
                .to_words()
                .iter()
                .map(|w| format!("{w:#010x}\n"))
                .collect();
            match output {
                Some(path) => {
                    if let Err(e) = fs::write(path, hex) {
                        eprintln!("ouas: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                None => print!("{hex}"),
            }
            ExitCode::SUCCESS
        }
        "verify" => {
            let (positional, opts) = match parse_options(rest) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("ouas: {e}");
                    return usage();
                }
            };
            let [input] = positional.as_slice() else {
                return usage();
            };
            let source = match fs::read_to_string(input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ouas: cannot read {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match load_program(input, &source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("ouas: {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let analysis = report_analysis(input, &program, &opts);
            if passes(&analysis, &opts) {
                if !opts.json && analysis.is_clean() {
                    eprintln!("ouas: {input}: verified clean");
                }
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "dis" => {
            let [input] = rest else { return usage() };
            let text = match fs::read_to_string(input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ouas: cannot read {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let words = match parse_hex_file(&text) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("ouas: {input}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Program::from_words(&words) {
                Ok(program) => {
                    print!("{}", disassemble(&program));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("ouas: {input}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
