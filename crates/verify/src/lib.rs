//! # Ouessant static microcode analyzer
//!
//! The Ouessant controller executes user-supplied microcode with no
//! runtime safety net: a `mvtc` burst that overruns its bank silently
//! corrupts a neighbour's data, an `execn` that is never joined hangs
//! or races the next job, and an output-FIFO `mvfc` with no producer
//! deadlocks the DMA. This crate is the *checked contract* at that
//! boundary — a static analysis over [`ouessant_isa::Program`] that
//! the `ouas` assembler, the SoC driver (before program load) and the
//! farm's job admission all run.
//!
//! ## Analyses
//!
//! [`verify`] builds a control-flow graph over the extended ISA
//! (hardware loops via `ldc`/`djnz`, split launch/join via
//! `execn`/`wrac`) and reports four defect classes as structured
//! [`Diagnostic`]s:
//!
//! 1. **Bank bounds** — every transfer checked against the declared
//!    [`VerifyConfig`] bank sizes, including worst-case loop trip
//!    counts (register-offset transfers are walked concretely — the
//!    controller's registers are deterministic from reset, so the
//!    worst offset is exact, not widened);
//! 2. **Launch/join hazards** — double launch, `wrac` with nothing
//!    pending, `execn` never joined before `eop`;
//! 3. **DMA/accelerator races** — transfers touching a bank that
//!    feeds a still-un-joined launch;
//! 4. **FIFO discipline** — output reads with no producer on any
//!    path, launches with nothing fed, unreachable `eop`/dead code.
//!
//! Severity follows path certainty: a hazard on **every** path is an
//! error, on *some* path a warning. A blocking output drain counts as
//! an implicit join, so the software-pipelined overlap idiom
//! (`mvtcr`/`execn`/`mvfcr`/`djnz` with no `wrac`) stays
//! warning-only.
//!
//! ## Example
//!
//! ```
//! use ouessant_isa::assemble;
//! use ouessant_verify::{verify, VerifyConfig};
//!
//! // 16256 + 256 words overruns the 16384-word bank window.
//! let bad = assemble("mvtc BANK1,16256,DMA256,FIFO0\nexecs\neop")?;
//! let analysis = verify(&bad, &VerifyConfig::default());
//! assert!(analysis.has_errors());
//!
//! let good = assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop")?;
//! assert!(verify(&good, &VerifyConfig::default()).is_clean());
//! # Ok::<(), ouessant_isa::AssembleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod config;
pub mod diag;

mod bounds;
mod hazards;

pub use cfg::Cfg;
pub use config::{BankModel, VerifyConfig};
pub use diag::{Analysis, DiagKind, Diagnostic, Severity};

use ouessant_isa::Program;

/// Runs all analyses over `program` under `config`.
#[must_use]
pub fn verify(program: &Program, config: &VerifyConfig) -> Analysis {
    let cfg = Cfg::build(program);
    let mut diagnostics = cfg.dead_code(program);
    diagnostics.extend(hazards::analyze(program, &cfg));
    diagnostics.extend(bounds::analyze(program, &cfg, config));
    Analysis::new(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouessant_isa::{assemble, FIGURE4_SOURCE};

    fn run(src: &str) -> Analysis {
        verify(&assemble(src).unwrap(), &VerifyConfig::default())
    }

    fn kinds(a: &Analysis) -> Vec<DiagKind> {
        a.diagnostics().iter().map(|d| d.kind).collect()
    }

    // ── known-good programs ──────────────────────────────────────────

    #[test]
    fn figure4_is_clean() {
        let a = run(FIGURE4_SOURCE);
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn split_launch_join_is_clean() {
        let a = run("mvtc BANK1,0,DMA64,FIFO0\nexecn 1\nwrac\nmvfc BANK2,0,DMA64,FIFO0\neop");
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn rolled_loop_is_clean() {
        // The rollup_loops output shape: ldo/ldc/mvtcr/djnz per stream.
        let a = run(
            "ldo O0,0\nldc R0,8\nin: mvtcr BANK1,O0,DMA64,FIFO0\ndjnz R0,in\n\
             execs\n\
             ldo O1,0\nldc R1,8\nout: mvfcr BANK2,O1,DMA64,FIFO0\ndjnz R1,out\n\
             eop",
        );
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn overlap_idiom_warns_but_never_errors() {
        // The software-pipelined idiom from the AXI portability test:
        // no wrac anywhere; the blocking mvfcr is the implicit join.
        let a = run("ldc R0,8\nldo O0,0\nldo O1,0\n\
             loop: mvtcr BANK1,O0,DMA16,FIFO0\nexecn 16\nmvfcr BANK2,O1,DMA16,FIFO0\n\
             djnz R0,loop\neop");
        assert_eq!(a.error_count(), 0, "{a}");
        assert!(a.warning_count() > 0, "overlap is still worth flagging");
    }

    // ── defect class 1: bank bounds ──────────────────────────────────

    #[test]
    fn immediate_burst_overflow_is_an_error() {
        let a = run("mvtc BANK1,16256,DMA256,FIFO0\nexecs\neop");
        assert!(kinds(&a).contains(&DiagKind::BankOverflow), "{a}");
        assert!(a.has_errors());
        assert_eq!(a.diagnostics()[0].index, 0);
    }

    #[test]
    fn loop_trip_count_overflow_is_caught() {
        // 8 iterations x DMA64 starting at 16001: the 6th burst spans
        // 16321..16385, past the 16384-word window — only the concrete
        // walk can see this.
        let a = run(
            "ldo O0,16001\nldc R0,8\nloop: mvtcr BANK1,O0,DMA64,FIFO0\ndjnz R0,loop\n\
             execs\nmvfc BANK2,0,DMA64,FIFO0\neop",
        );
        let overflow: Vec<_> = a
            .diagnostics()
            .iter()
            .filter(|d| d.kind == DiagKind::BankOverflow)
            .collect();
        assert_eq!(overflow.len(), 1, "{a}");
        assert_eq!(overflow[0].index, 2);
        assert_eq!(overflow[0].severity, Severity::Error);
    }

    #[test]
    fn in_bounds_loop_is_clean() {
        let a = run(
            "ldo O0,15872\nldc R0,8\nloop: mvtcr BANK1,O0,DMA64,FIFO0\ndjnz R0,loop\n\
             execs\nmvfc BANK2,0,DMA64,FIFO0\neop",
        );
        // 15872 + 8*64 = 16384 exactly: fits.
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn declared_small_bank_tightens_the_check() {
        let p = assemble("mvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop").unwrap();
        let cfg = VerifyConfig::job_map(1024, 32, 64);
        let a = verify(&p, &cfg);
        assert!(kinds(&a).contains(&DiagKind::BankOverflow), "{a}");
    }

    #[test]
    fn unmapped_bank_is_an_error() {
        let p = assemble("mvtc BANK5,0,DMA8,FIFO0\nexecs\nmvfc BANK2,0,DMA8,FIFO0\neop").unwrap();
        let a = verify(&p, &VerifyConfig::job_map(1024, 1024, 1024));
        assert!(kinds(&a).contains(&DiagKind::UnmappedBank), "{a}");
    }

    #[test]
    fn burst_wider_than_fifo_is_an_error() {
        let p = assemble("mvtc BANK1,0,DMA256,FIFO0\nexecs\neop").unwrap();
        let a = verify(&p, &VerifyConfig::default().with_fifo_depth(64));
        assert!(kinds(&a).contains(&DiagKind::BurstExceedsFifo), "{a}");
        assert!(a.has_errors());
    }

    // ── defect class 2: launch/join hazards ──────────────────────────

    #[test]
    fn unjoined_execn_at_eop_is_an_error() {
        let a = run("mvtc BANK1,0,DMA64,FIFO0\nexecn 1\neop");
        assert!(kinds(&a).contains(&DiagKind::UnjoinedLaunch), "{a}");
        assert!(a.has_errors());
    }

    #[test]
    fn double_launch_is_an_error() {
        let a = run("mvtc BANK1,0,DMA8,FIFO0\nexecn 1\nexecn 2\nwrac\neop");
        assert!(kinds(&a).contains(&DiagKind::DoubleLaunch), "{a}");
        assert!(a.has_errors());
    }

    #[test]
    fn wrac_without_launch_is_an_error() {
        let a = run("wrac\neop");
        assert!(kinds(&a).contains(&DiagKind::SpuriousJoin), "{a}");
        assert!(a.has_errors());
    }

    // ── defect class 3: DMA/accelerator races ────────────────────────

    #[test]
    fn overwriting_the_launch_input_bank_is_an_error() {
        let a = run("mvtc BANK1,0,DMA64,FIFO0\nexecn 1\nmvfc BANK1,0,DMA64,FIFO0\nwrac\neop");
        let race: Vec<_> = a
            .diagnostics()
            .iter()
            .filter(|d| d.kind == DiagKind::RacingTransfer)
            .collect();
        assert_eq!(race.len(), 1, "{a}");
        assert_eq!(race[0].severity, Severity::Error);
        assert_eq!(race[0].index, 2);
    }

    #[test]
    fn draining_to_a_different_bank_is_not_a_race() {
        let a = run("mvtc BANK1,0,DMA64,FIFO0\nexecn 1\nmvfc BANK2,0,DMA64,FIFO0\neop");
        assert!(
            !kinds(&a).contains(&DiagKind::RacingTransfer),
            "the implicit-join drain targets another bank: {a}"
        );
        assert_eq!(a.error_count(), 0, "{a}");
    }

    #[test]
    fn reconfig_during_pending_launch_is_an_error() {
        let a = run("mvtc BANK1,0,DMA8,FIFO0\nexecn 1\nrcfg 2\nwrac\neop");
        assert!(kinds(&a).contains(&DiagKind::RacingReconfig), "{a}");
        assert!(a.has_errors());
    }

    // ── defect class 4: FIFO discipline ──────────────────────────────

    #[test]
    fn output_read_with_no_launch_is_an_error() {
        let a = run("mvfc BANK2,0,DMA64,FIFO0\neop");
        assert!(kinds(&a).contains(&DiagKind::ReadBeforeExec), "{a}");
        assert!(a.has_errors());
    }

    #[test]
    fn launch_with_no_input_is_a_warning() {
        let a = run("execs\nmvfc BANK2,0,DMA8,FIFO0\neop");
        let diags = kinds(&a);
        assert!(diags.contains(&DiagKind::ExecWithoutInput), "{a}");
        assert_eq!(a.error_count(), 0, "only a warning: {a}");
    }

    #[test]
    fn unreachable_eop_is_dead_code() {
        let a = run("mvtc BANK1,0,DMA8,FIFO0\nexecs\nhalt\nmvfc BANK2,0,DMA8,FIFO0\neop");
        let dead: Vec<_> = a
            .diagnostics()
            .iter()
            .filter(|d| d.kind == DiagKind::DeadCode)
            .collect();
        assert_eq!(dead.len(), 2, "{a}");
        assert_eq!(dead[1].index, 4, "the eop itself");
    }

    // ── severity & robustness ────────────────────────────────────────

    #[test]
    fn rcfg_headed_job_program_is_clean() {
        // The farm's DPR job shape: reconfigure, stream, execute, drain.
        let a = run("rcfg 1\nmvtc BANK1,0,DMA64,FIFO0\nexecs\nmvfc BANK2,0,DMA64,FIFO0\neop");
        assert!(a.is_clean(), "{a}");
    }

    #[test]
    fn diagnostics_carry_hints_and_indices() {
        let a = run("mvtc BANK1,16256,DMA256,FIFO0\nexecs\neop");
        let d = &a.diagnostics()[0];
        assert!(!d.hint.is_empty());
        assert!(d.message.contains("BANK1"));
    }
}
