//! Bank-bounds, unmapped-bank and FIFO-capacity analysis.
//!
//! Two tiers. Immediate-offset transfers (`mvtc`/`mvfc`) are checked
//! statically over every CFG-reachable instruction — their footprint
//! is `offset + burst` regardless of loop trip counts. Register-offset
//! transfers (`mvtcr`/`mvfcr`) depend on `ldo`/`addo`/post-increment
//! history, but the controller's counters and offset registers are
//! fully deterministic from reset, so the pass *walks* the program
//! concretely (same semantics as the controller FSM, fuel-bounded) and
//! records the worst offset each transfer instruction ever issues —
//! this is what makes "worst-case loop trip count" bounds exact rather
//! than widened.

use std::collections::HashMap;

use ouessant_isa::operands::{MAX_OFFSET, NUM_COUNTERS, NUM_OFFSET_REGS};
use ouessant_isa::{Instruction, Program, Transfer, TransferOffset};

use crate::cfg::Cfg;
use crate::config::{BankModel, VerifyConfig};
use crate::diag::{DiagKind, Diagnostic, Severity};

/// Abort the concrete walk after this many executed instructions.
const WALK_FUEL: u64 = 2_000_000;

fn overflow_diag(t: &Transfer, start: u32, capacity: u32) -> Diagnostic {
    let end = start + u32::from(t.burst.words());
    Diagnostic {
        severity: Severity::Error,
        kind: DiagKind::BankOverflow,
        index: t.index,
        message: format!(
            "transfer touches {} words {}..{} but the bank holds {} words",
            t.bank, start, end, capacity
        ),
        hint: format!("shrink the burst or start offset so offset+burst <= {capacity}"),
    }
}

fn unmapped_diag(t: &Transfer) -> Diagnostic {
    Diagnostic {
        severity: Severity::Error,
        kind: DiagKind::UnmappedBank,
        index: t.index,
        message: format!("transfer touches {} which is not mapped", t.bank),
        hint: "target a mapped bank (see the job memory map)".into(),
    }
}

/// Runs both tiers and returns the bounds diagnostics.
pub(crate) fn analyze(program: &Program, cfg: &Cfg, config: &VerifyConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Tier A: every reachable transfer, static facts only.
    for t in program.iter_transfers() {
        if !cfg.is_reachable(t.index) {
            continue;
        }
        if let Some(depth) = config.fifo_depth {
            let burst = u32::from(t.burst.words());
            if burst > depth {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    kind: DiagKind::BurstExceedsFifo,
                    index: t.index,
                    message: format!(
                        "burst of {burst} words exceeds the {depth}-word FIFO and can never complete"
                    ),
                    hint: format!("split the transfer into bursts of at most {depth} words"),
                });
            }
        }
        match (config.banks[t.bank.index()], t.start_offset()) {
            (BankModel::Unmapped, _) => out.push(unmapped_diag(&t)),
            (model, Some(start)) => {
                let capacity = model.capacity().expect("mapped banks have a capacity");
                if start + u32::from(t.burst.words()) > capacity {
                    out.push(overflow_diag(&t, start, capacity));
                }
            }
            // Register-offset transfers against a mapped bank are
            // handled by the concrete walk below.
            (_, None) => {}
        }
    }

    // Tier B: the concrete walk, for register-offset transfers.
    let has_register_transfers = program
        .iter_transfers()
        .any(|t| matches!(t.offset, TransferOffset::Register(_)));
    if has_register_transfers {
        out.extend(walk(program, config));
    }

    out
}

/// Executes the program's control skeleton concretely from reset and
/// records the worst start offset of every register-offset transfer.
fn walk(program: &Program, config: &VerifyConfig) -> Vec<Diagnostic> {
    let mut counters = [0u64; NUM_COUNTERS as usize];
    let mut oregs = [0u32; NUM_OFFSET_REGS as usize];
    let wrap = MAX_OFFSET + 1;
    // pc -> worst start offset seen across all iterations.
    let mut worst: HashMap<usize, u32> = HashMap::new();
    let mut pc = 0usize;
    let mut fuel = WALK_FUEL;
    let mut exhausted = None;
    while pc < program.len() {
        if fuel == 0 {
            exhausted = Some(pc);
            break;
        }
        fuel -= 1;
        match program[pc] {
            Instruction::Ldc { counter, imm } => counters[counter.index()] = u64::from(imm),
            Instruction::Ldo { reg, imm } => oregs[reg.index()] = u32::from(imm),
            Instruction::Addo { reg, delta } => {
                let v = i64::from(oregs[reg.index()]) + i64::from(delta);
                oregs[reg.index()] = v.rem_euclid(i64::from(wrap)) as u32;
            }
            Instruction::Djnz { counter, target } if counters[counter.index()] > 0 => {
                counters[counter.index()] -= 1;
                if counters[counter.index()] > 0 {
                    pc = target.index();
                    continue;
                }
            }
            Instruction::Mvtcr { reg, burst, .. } | Instruction::Mvfcr { reg, burst, .. } => {
                let start = oregs[reg.index()];
                worst
                    .entry(pc)
                    .and_modify(|w| *w = (*w).max(start))
                    .or_insert(start);
                oregs[reg.index()] = (start + u32::from(burst.words())) % wrap;
            }
            Instruction::Eop | Instruction::Halt => break,
            _ => {}
        }
        pc += 1;
    }

    let mut out = Vec::new();
    let mut offenders: Vec<(usize, u32)> = worst.into_iter().collect();
    offenders.sort_unstable();
    for (index, start) in offenders {
        let t = Transfer::from_instruction(index, &program[index])
            .expect("walk only records transfer instructions");
        match config.banks[t.bank.index()] {
            // Tier A already reported unmapped banks.
            BankModel::Unmapped => {}
            model => {
                let capacity = model.capacity().expect("mapped banks have a capacity");
                if start + u32::from(t.burst.words()) > capacity {
                    out.push(overflow_diag(&t, start, capacity));
                }
            }
        }
    }
    if let Some(pc) = exhausted {
        out.push(Diagnostic {
            severity: Severity::Warning,
            kind: DiagKind::AnalysisBudget,
            index: pc,
            message: format!(
                "bounds walk stopped after {WALK_FUEL} instructions without reaching eop"
            ),
            hint: "the program may not terminate; check the loop counters".into(),
        });
    }
    out
}
