//! Launch/join, race and FIFO-discipline analysis.
//!
//! A forward may/must dataflow over the [`Cfg`] with a three-valued
//! lattice per fact (`No` / `Yes` / `Both` = differs by path). The
//! abstract state tracks:
//!
//! * `pending` — is an `execn` launch un-joined?
//! * `executed` — has any launch happened (needed by the output-FIFO
//!   read discipline)?
//! * `drained` — has the output FIFO been read since the pending
//!   launch? A blocking `mvfc` that returns proves the accelerator
//!   made progress, so a drain is accepted as an *implicit join*
//!   downgrade: the software-pipelined overlap idiom (`mvtcr` /
//!   `execn` / `mvfcr` / `djnz` with no `wrac` at all) produces
//!   warnings, never errors.
//! * `fed` — banks transferred to the coprocessor since the last
//!   launch (the next launch consumes them);
//! * `owned` — banks feeding the currently-pending launch (touching
//!   one before the join races the accelerator's input stream).
//!
//! Severities follow the lattice: a hazard that holds on **every**
//! path (`Yes`) is an error, one that holds on *some* path (`Both`)
//! a warning.

use ouessant_isa::{Instruction, Program, Transfer};

use crate::cfg::Cfg;
use crate::diag::{DiagKind, Diagnostic, Severity};

/// Three-valued dataflow fact: false on all paths, true on all paths,
/// or path-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    No,
    Yes,
    Both,
}

impl Tri {
    fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Both
        }
    }

    /// True on at least one path.
    fn may(self) -> bool {
        !matches!(self, Tri::No)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    pending: Tri,
    executed: Tri,
    drained: Tri,
    fed: u8,
    owned: u8,
}

impl State {
    const ENTRY: State = State {
        pending: Tri::No,
        executed: Tri::No,
        drained: Tri::No,
        fed: 0,
        owned: 0,
    };

    fn join(self, other: State) -> State {
        State {
            pending: self.pending.join(other.pending),
            executed: self.executed.join(other.executed),
            drained: self.drained.join(other.drained),
            fed: self.fed | other.fed,
            owned: self.owned | other.owned,
        }
    }
}

fn bank_bit(t: &Transfer) -> u8 {
    1u8 << t.bank.index()
}

/// The transfer function: the state *after* executing `insn` in `s`.
/// Pure (no diagnostics) so the fixpoint iteration stays cheap; the
/// reporting pass below re-runs it once per reachable instruction.
fn step(insn: &Instruction, mut s: State) -> State {
    match insn {
        Instruction::Mvtc { .. } | Instruction::Mvtcr { .. } => {
            let t = Transfer::from_instruction(0, insn).expect("transfer instruction");
            s.fed |= bank_bit(&t);
        }
        Instruction::Mvfc { .. } | Instruction::Mvfcr { .. } => {
            if s.pending.may() {
                s.drained = Tri::Yes;
            }
            if s.pending == Tri::Yes {
                // The blocking drain proves the launch ran.
                s.executed = Tri::Yes;
            }
        }
        Instruction::Exec { .. } => {
            s.pending = Tri::No;
            s.executed = Tri::Yes;
            s.drained = Tri::No;
            s.fed = 0;
            s.owned = 0;
        }
        Instruction::Execn { .. } => {
            s.owned = s.fed;
            s.fed = 0;
            s.pending = Tri::Yes;
            s.drained = Tri::No;
        }
        Instruction::Wrac => {
            if s.pending.may() {
                s.executed = Tri::Yes;
            }
            s.pending = Tri::No;
            s.drained = Tri::No;
            s.owned = 0;
        }
        Instruction::Rcfg { .. } => {
            // A new accelerator personality: past launches prove
            // nothing about its FIFOs.
            s.pending = Tri::No;
            s.executed = Tri::No;
            s.drained = Tri::No;
            s.fed = 0;
            s.owned = 0;
        }
        Instruction::Nop
        | Instruction::Eop
        | Instruction::Halt
        | Instruction::Ldc { .. }
        | Instruction::Djnz { .. }
        | Instruction::Ldo { .. }
        | Instruction::Addo { .. }
        | Instruction::Wait { .. }
        | Instruction::Sync => {}
    }
    s
}

/// Diagnostics for executing `insn` at `pc` in state `s`.
fn report(pc: usize, insn: &Instruction, s: &State, out: &mut Vec<Diagnostic>) {
    let push = |out: &mut Vec<Diagnostic>, severity, kind, message: String, hint: &str| {
        out.push(Diagnostic {
            severity,
            kind,
            index: pc,
            message,
            hint: hint.into(),
        });
    };
    match insn {
        Instruction::Mvtc { .. } | Instruction::Mvtcr { .. } => {
            let t = Transfer::from_instruction(pc, insn).expect("transfer instruction");
            if s.pending.may() && s.owned & bank_bit(&t) != 0 {
                push(
                    out,
                    Severity::Warning,
                    DiagKind::RacingTransfer,
                    format!(
                        "`{insn}` re-reads {} while it may still feed an un-joined launch",
                        t.bank
                    ),
                    "join with `wrac` (or drain the output FIFO) before touching the bank",
                );
            }
        }
        Instruction::Mvfc { .. } | Instruction::Mvfcr { .. } => {
            let t = Transfer::from_instruction(pc, insn).expect("transfer instruction");
            if s.owned & bank_bit(&t) != 0 && s.pending.may() {
                let severity = if s.pending == Tri::Yes {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                push(
                    out,
                    severity,
                    DiagKind::RacingTransfer,
                    format!(
                        "`{insn}` overwrites {} while an un-joined launch may still stream it",
                        t.bank
                    ),
                    "join with `wrac` before writing results over the launch's input bank",
                );
            } else if s.pending == Tri::No && !s.executed.may() {
                push(
                    out,
                    Severity::Error,
                    DiagKind::ReadBeforeExec,
                    format!(
                        "`{insn}` reads the output FIFO but no path has launched the accelerator"
                    ),
                    "insert an `execs`/`execn` before draining the output FIFO",
                );
            } else if s.pending == Tri::No && s.executed == Tri::Both {
                push(
                    out,
                    Severity::Warning,
                    DiagKind::ReadBeforeExec,
                    format!("`{insn}` reads the output FIFO but some path has not launched the accelerator"),
                    "make every path launch before draining, or restructure the branch",
                );
            }
        }
        Instruction::Exec { .. } | Instruction::Execn { .. } => {
            if s.pending.may() {
                let severity = if s.pending == Tri::Yes && s.drained == Tri::No {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                push(
                    out,
                    severity,
                    DiagKind::DoubleLaunch,
                    format!("`{insn}` launches while a previous `execn` is still un-joined"),
                    "join the previous launch with `wrac` first",
                );
            }
            if s.fed == 0 {
                push(
                    out,
                    Severity::Warning,
                    DiagKind::ExecWithoutInput,
                    format!(
                        "`{insn}` launches with no input transferred since the previous launch"
                    ),
                    "transfer input with `mvtc` first, or confirm the accelerator needs none",
                );
            }
        }
        Instruction::Wrac => {
            if s.pending == Tri::No {
                push(
                    out,
                    Severity::Error,
                    DiagKind::SpuriousJoin,
                    "`wrac` waits for an accelerator no path has launched with `execn`".into(),
                    "remove the `wrac` or launch with `execn` before it",
                );
            } else if s.pending == Tri::Both {
                push(
                    out,
                    Severity::Warning,
                    DiagKind::SpuriousJoin,
                    "`wrac` waits for a launch that only some paths performed".into(),
                    "make every path launch with `execn` before the `wrac`",
                );
            }
        }
        Instruction::Rcfg { .. } if s.pending.may() => {
            let severity = if s.pending == Tri::Yes && s.drained == Tri::No {
                Severity::Error
            } else {
                Severity::Warning
            };
            push(
                out,
                severity,
                DiagKind::RacingReconfig,
                format!("`{insn}` reconfigures while an `execn` launch is still un-joined"),
                "join with `wrac` before reconfiguring the accelerator slot",
            );
        }
        Instruction::Eop | Instruction::Halt if s.pending.may() => {
            let severity = if s.pending == Tri::Yes && s.drained == Tri::No {
                Severity::Error
            } else {
                Severity::Warning
            };
            push(
                out,
                severity,
                DiagKind::UnjoinedLaunch,
                format!("`{insn}` ends the program while an `execn` launch may be un-joined"),
                "join with `wrac` (or drain the output FIFO) before ending the program",
            );
        }
        _ => {}
    }
}

/// Runs the launch/join, race and FIFO-discipline analysis.
pub(crate) fn analyze(program: &Program, cfg: &Cfg) -> Vec<Diagnostic> {
    let len = program.len();
    let mut states: Vec<Option<State>> = vec![None; len];
    states[0] = Some(State::ENTRY);
    let mut worklist = vec![0usize];
    while let Some(pc) = worklist.pop() {
        let s = states[pc].expect("worklist entries have a state");
        let after = step(&program[pc], s);
        for &succ in cfg.successors(pc) {
            let merged = match states[succ] {
                Some(old) => old.join(after),
                None => after,
            };
            if states[succ] != Some(merged) {
                states[succ] = Some(merged);
                worklist.push(succ);
            }
        }
    }

    let mut out = Vec::new();
    for pc in 0..len {
        if let Some(s) = states[pc] {
            report(pc, &program[pc], &s, &mut out);
        }
    }
    out
}
