//! Structured diagnostics produced by the analyzer.
//!
//! Every finding carries a severity, the instruction index it anchors
//! to, a stable machine-readable code, a human message and a fix-it
//! hint. [`Analysis`] is the full result of a [`crate::verify`] run;
//! [`Analysis::to_json`] renders it for tooling (the `ouas --json`
//! flag) without any serialization dependency.

use std::fmt;

/// How bad a finding is.
///
/// *Errors* are definite contract violations — the program will
/// overrun a bank, hang the controller, or read garbage on **every**
/// path that reaches the instruction. *Warnings* flag aggressive or
/// suspicious constructs (e.g. the software-pipelined `execn` overlap
/// idiom, where the output-FIFO drain is the implicit join) that are
/// only wrong on *some* path or under unusual accelerator behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but possibly intentional.
    Warning,
    /// Definite contract violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The defect classes the analyzer reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagKind {
    /// A transfer's `offset + burst` exceeds the declared bank size.
    BankOverflow,
    /// A transfer touches a bank the configuration declares unmapped.
    UnmappedBank,
    /// A burst longer than the FIFO depth can never complete.
    BurstExceedsFifo,
    /// The bounds walk ran out of fuel before reaching `eop`.
    AnalysisBudget,
    /// A launch while a previous `execn` is still un-joined.
    DoubleLaunch,
    /// A `wrac` with no launch pending on any path.
    SpuriousJoin,
    /// An `execn` never joined before `eop`/`halt`.
    UnjoinedLaunch,
    /// A transfer touches a bank feeding an un-joined launch.
    RacingTransfer,
    /// An `rcfg` while a launch is still un-joined.
    RacingReconfig,
    /// An output-FIFO read with no launch on any incoming path.
    ReadBeforeExec,
    /// A launch with no input transferred since the previous launch.
    ExecWithoutInput,
    /// An instruction no path can reach (including unreachable `eop`).
    DeadCode,
}

impl DiagKind {
    /// The stable machine-readable code (`--json` output).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DiagKind::BankOverflow => "bank-overflow",
            DiagKind::UnmappedBank => "unmapped-bank",
            DiagKind::BurstExceedsFifo => "burst-exceeds-fifo",
            DiagKind::AnalysisBudget => "analysis-budget",
            DiagKind::DoubleLaunch => "double-launch",
            DiagKind::SpuriousJoin => "spurious-join",
            DiagKind::UnjoinedLaunch => "unjoined-launch",
            DiagKind::RacingTransfer => "racing-transfer",
            DiagKind::RacingReconfig => "racing-reconfig",
            DiagKind::ReadBeforeExec => "read-before-exec",
            DiagKind::ExecWithoutInput => "exec-without-input",
            DiagKind::DeadCode => "dead-code",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// The defect class.
    pub kind: DiagKind,
    /// Index of the instruction the finding anchors to.
    pub index: usize,
    /// Human-readable description.
    pub message: String,
    /// A suggested fix.
    pub hint: String,
}

impl Diagnostic {
    /// Renders the diagnostic as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"index\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
            self.severity,
            self.kind.code(),
            self.index,
            escape_json(&self.message),
            escape_json(&self.hint),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at #{}: {} (hint: {})",
            self.severity,
            self.kind.code(),
            self.index,
            self.message,
            self.hint
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The result of one [`crate::verify`] run: the diagnostics, sorted by
/// instruction index (errors before warnings at the same index).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    pub(crate) fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by_key(|d| (d.index, d.severity == Severity::Warning));
        Self { diagnostics }
    }

    /// All findings, in program order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the run produced no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the whole analysis as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
            self.error_count(),
            self.warning_count(),
            items.join(",")
        )
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "clean: no diagnostics");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(severity: Severity, index: usize) -> Diagnostic {
        Diagnostic {
            severity,
            kind: DiagKind::BankOverflow,
            index,
            message: "m".into(),
            hint: "h".into(),
        }
    }

    #[test]
    fn analysis_sorts_and_counts() {
        let a = Analysis::new(vec![
            sample(Severity::Warning, 3),
            sample(Severity::Error, 1),
            sample(Severity::Error, 3),
        ]);
        assert_eq!(a.error_count(), 2);
        assert_eq!(a.warning_count(), 1);
        assert!(a.has_errors());
        assert_eq!(a.diagnostics()[0].index, 1);
        assert_eq!(a.diagnostics()[1].severity, Severity::Error);
        assert_eq!(a.diagnostics()[2].severity, Severity::Warning);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic {
            severity: Severity::Error,
            kind: DiagKind::UnmappedBank,
            index: 2,
            message: "say \"hi\"".into(),
            hint: "line\nbreak".into(),
        };
        let j = d.to_json();
        assert!(j.contains("\\\"hi\\\""));
        assert!(j.contains("\\n"));
        assert!(j.starts_with("{\"severity\":\"error\",\"code\":\"unmapped-bank\""));
        let a = Analysis::new(vec![d]);
        assert!(a.to_json().starts_with("{\"errors\":1,\"warnings\":0,"));
    }

    #[test]
    fn clean_analysis_display() {
        let a = Analysis::default();
        assert!(a.is_clean());
        assert_eq!(a.to_string(), "clean: no diagnostics");
    }
}
