//! The repository's `.oua` microcode fixtures, gated in-tree.
//!
//! `scripts/verify_fixtures.sh` runs the same check through the `ouas`
//! CLI in CI; this test keeps the invariant enforced by `cargo test`
//! alone, and additionally pins the *warning* expectations the shell
//! gate tolerates.

use ouessant_isa::assemble;
use ouessant_verify::{verify, VerifyConfig};

/// `(name, source, expected warnings)` for every fixture in the tree.
/// None may carry error-severity diagnostics.
const FIXTURES: &[(&str, &str, usize)] = &[
    (
        "examples/microcode/figure4.oua",
        include_str!("../../../examples/microcode/figure4.oua"),
        0,
    ),
    (
        "examples/microcode/dft_rolled.oua",
        include_str!("../../../examples/microcode/dft_rolled.oua"),
        0,
    ),
    (
        "examples/microcode/split_launch.oua",
        include_str!("../../../examples/microcode/split_launch.oua"),
        0,
    ),
    (
        "crates/isa/tests/fixtures/quickstart.oua",
        include_str!("../../isa/tests/fixtures/quickstart.oua"),
        0,
    ),
    (
        "crates/isa/tests/fixtures/rolled_loop.oua",
        include_str!("../../isa/tests/fixtures/rolled_loop.oua"),
        0,
    ),
    // The overlapped double-buffering idiom: no explicit wrac, so the
    // launch/join analysis warns on every un-joined path — but the
    // blocking mvfcr drain keeps every warning below error severity.
    (
        "crates/isa/tests/fixtures/overlap_pipeline.oua",
        include_str!("../../isa/tests/fixtures/overlap_pipeline.oua"),
        3,
    ),
];

#[test]
fn every_fixture_assembles_and_verifies_without_errors() {
    let config = VerifyConfig::default();
    for (name, source, expected_warnings) in FIXTURES {
        let program = assemble(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = verify(&program, &config);
        assert_eq!(
            analysis.error_count(),
            0,
            "{name} must carry no error-severity diagnostics: {analysis}"
        );
        assert_eq!(
            analysis.warning_count(),
            *expected_warnings,
            "{name}: warning set drifted: {analysis}"
        );
    }
}
