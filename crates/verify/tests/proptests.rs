//! Randomized agreement between the optimizer and the verifier.
//!
//! The optimizer (`ouessant_isa::opt`) rewrites transfer sequences —
//! coalescing bursts and rolling unrolled streams into
//! `ldc`/`mvtcr`/`djnz` loops. Those rewrites change the *shape* the
//! analyzer has to reason about (immediate offsets become register
//! walks), so the key invariant is: the verifier's verdict must survive
//! optimization in both directions. Clean microcode stays clean, and
//! defective microcode stays flagged.

use ouessant_isa::opt::optimize;
use ouessant_isa::{assemble, Program, ProgramBuilder, FIGURE4_SOURCE};
use ouessant_sim::XorShift64;
use ouessant_verify::{verify, VerifyConfig};

const CASES: u32 = 200;

/// A random well-formed offload job: a chunked input stream into bank
/// 1, a launch, a chunked output stream from bank 2 — every burst
/// inside the 16384-word bank window by construction.
fn random_clean_job(rng: &mut XorShift64) -> Program {
    const CHUNKS: [u16; 6] = [4, 8, 16, 32, 64, 128];
    let chunk_in = CHUNKS[rng.gen_range_u32(0..6) as usize];
    let chunk_out = CHUNKS[rng.gen_range_u32(0..6) as usize];
    let total_in = u32::from(chunk_in) * rng.gen_range_u32(1..40);
    let total_out = u32::from(chunk_out) * rng.gen_range_u32(1..40);
    let start_in = rng.gen_range_u32(0..(16384 - total_in)) as u16;
    let start_out = rng.gen_range_u32(0..(16384 - total_out)) as u16;
    ProgramBuilder::new()
        .transfer_to_coprocessor(1, start_in, total_in, chunk_in, 0)
        .expect("in-bounds by construction")
        .execs()
        .transfer_from_coprocessor(2, start_out, total_out, chunk_out, 0)
        .expect("in-bounds by construction")
        .eop()
        .finish()
        .expect("structurally valid")
}

/// A random job whose final input burst crosses the end of the bank
/// window — exactly one defect, placed where loop roll-up will hide it
/// behind a register walk.
fn random_overflowing_job(rng: &mut XorShift64) -> Program {
    let burst = [16u16, 32, 64, 128, 256][rng.gen_range_u32(0..5) as usize];
    // The burst starts inside the window but ends past it.
    let overhang = rng.gen_range_u32(1..u32::from(burst)) as u16;
    let start = 16384 - burst + overhang;
    ProgramBuilder::new()
        .mvtc(1, start, burst, 0)
        .expect("offset and burst are field-valid")
        .execs()
        .eop()
        .finish()
        .expect("structurally valid")
}

#[test]
fn optimized_clean_programs_stay_clean() {
    let mut rng = XorShift64::new(0x0E55_A017);
    let config = VerifyConfig::default();
    for case in 0..CASES {
        let program = random_clean_job(&mut rng);
        let before = verify(&program, &config);
        assert!(
            before.is_clean(),
            "case {case}: generator produced a flagged program: {before}"
        );
        let (optimized, stats) = optimize(&program).expect("optimizer preserves validity");
        let after = verify(&optimized, &config);
        assert!(
            after.is_clean(),
            "case {case}: optimization ({stats:?}) introduced diagnostics: {after}"
        );
    }
}

#[test]
fn optimized_defective_programs_stay_flagged() {
    let mut rng = XorShift64::new(0xBAD_C0DE);
    let config = VerifyConfig::default();
    for case in 0..CASES {
        let program = random_overflowing_job(&mut rng);
        let before = verify(&program, &config);
        assert!(
            before.has_errors(),
            "case {case}: generator failed to produce an overflow"
        );
        let (optimized, _) = optimize(&program).expect("optimizer preserves validity");
        let after = verify(&optimized, &config);
        assert!(
            after.has_errors(),
            "case {case}: optimization laundered a bank overflow"
        );
    }
}

#[test]
fn figure4_microcode_survives_optimization_clean() {
    let program = assemble(FIGURE4_SOURCE).unwrap();
    let config = VerifyConfig::default();
    assert!(verify(&program, &config).is_clean());
    let (optimized, stats) = optimize(&program).unwrap();
    assert!(
        stats.coalesced > 0 || stats.loops_created > 0,
        "Figure 4's unrolled stream is the optimizer's showcase"
    );
    assert!(
        verify(&optimized, &config).is_clean(),
        "the rolled Figure 4 loop must verify clean through the register walk"
    );
}
