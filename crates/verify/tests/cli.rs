//! End-to-end tests of the `ouas` assembler/disassembler/verifier CLI.

use std::fs;
use std::process::Command;

fn ouas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ouas"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ouas_test_{}_{name}", std::process::id()));
    p
}

const SOURCE: &str = "\
// quickstart microcode
mvtc BANK1,0,DMA64,FIFO0
execs
mvfc BANK2,0,DMA64,FIFO0
eop
";

#[test]
fn asm_to_stdout() {
    let src = temp_path("a.s");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas().arg("asm").arg(&src).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 4);
    assert!(text.lines().all(|l| l.starts_with("0x")));
    fs::remove_file(src).ok();
}

#[test]
fn asm_dis_round_trip() {
    let src = temp_path("b.s");
    let hex = temp_path("b.hex");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas()
        .args(["asm"])
        .arg(&src)
        .arg("-o")
        .arg(&hex)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = ouas().arg("dis").arg(&hex).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mvtc BANK1,0,DMA64,FIFO0"));
    assert!(text.contains("execs"));
    assert!(text.contains("eop"));
    fs::remove_file(src).ok();
    fs::remove_file(hex).ok();
}

#[test]
fn check_reports_statistics() {
    let src = temp_path("c.s");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas().arg("check").arg(&src).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("4 instructions"));
    assert!(text.contains("128 data words"));
    fs::remove_file(src).ok();
}

#[test]
fn syntax_error_reports_line_and_fails() {
    let src = temp_path("d.s");
    fs::write(&src, "nop\nfrobnicate\neop\n").unwrap();
    let out = ouas().arg("asm").arg(&src).output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("line 2"), "{text}");
    assert!(text.contains("frobnicate"));
    fs::remove_file(src).ok();
}

#[test]
fn dis_rejects_bad_hex() {
    let hex = temp_path("e.hex");
    fs::write(&hex, "0xdeadbeef\nnot-hex\n").unwrap();
    let out = ouas().arg("dis").arg(&hex).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    fs::remove_file(hex).ok();
}

#[test]
fn dis_rejects_invalid_program() {
    // A reserved opcode word.
    let hex = temp_path("f.hex");
    fs::write(&hex, format!("{:#010x}\n", 31u32 << 27)).unwrap();
    let out = ouas().arg("dis").arg(&hex).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("reserved opcode"));
    fs::remove_file(hex).ok();
}

#[test]
fn usage_on_no_arguments() {
    let out = ouas().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_reported() {
    let out = ouas()
        .args(["asm", "/nonexistent/path.s"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

// ── verifier integration ─────────────────────────────────────────────

/// A burst that overruns the 16384-word bank window.
const OUT_OF_BOUNDS: &str = "\
mvtc BANK1,16256,DMA256,FIFO0
execs
eop
";

#[test]
fn verify_clean_program_exits_zero() {
    let src = temp_path("g.s");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas().arg("verify").arg(&src).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("verified clean"));
    fs::remove_file(src).ok();
}

#[test]
fn verify_flags_out_of_bounds_burst() {
    let src = temp_path("h.s");
    fs::write(&src, OUT_OF_BOUNDS).unwrap();
    let out = ouas().arg("verify").arg(&src).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(text.contains("bank-overflow"), "{text}");
    assert!(text.contains("1 error(s)"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn asm_with_verify_blocks_bad_microcode() {
    let src = temp_path("i.s");
    fs::write(&src, OUT_OF_BOUNDS).unwrap();
    let out = ouas().args(["asm", "--verify"]).arg(&src).output().unwrap();
    assert!(!out.status.success());
    assert!(
        out.stdout.is_empty(),
        "no hex output for rejected microcode"
    );
    // Without --verify the same source still assembles.
    let out = ouas().arg("asm").arg(&src).output().unwrap();
    assert!(out.status.success());
    fs::remove_file(src).ok();
}

#[test]
fn deny_warnings_escalates_exit_status() {
    // A launch with no input transferred: warning-only.
    let src = temp_path("j.s");
    fs::write(&src, "execs\nmvfc BANK2,0,DMA8,FIFO0\neop\n").unwrap();
    let out = ouas().arg("verify").arg(&src).output().unwrap();
    assert!(out.status.success(), "warnings alone must not fail");
    let out = ouas()
        .args(["verify", "--deny-warnings"])
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("exec-without-input"));
    fs::remove_file(src).ok();
}

#[test]
fn json_diagnostics_are_machine_readable() {
    let src = temp_path("k.s");
    fs::write(&src, OUT_OF_BOUNDS).unwrap();
    let out = ouas()
        .args(["verify", "--json"])
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("{\"errors\":1,"), "{text}");
    assert!(text.contains("\"code\":\"bank-overflow\""), "{text}");
    assert!(text.contains("\"index\":0"), "{text}");
    fs::remove_file(src).ok();
}

#[test]
fn bank_flags_shape_the_memory_map() {
    let src = temp_path("l.s");
    fs::write(&src, SOURCE).unwrap();
    // Declaring bank 1 smaller than the 64-word burst makes it an error.
    let out = ouas()
        .args(["verify", "--bank", "1=32"])
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bank-overflow"));
    // Declaring bank 2 unmapped flags the mvfc.
    let out = ouas()
        .args(["verify", "--bank", "2=unmapped"])
        .arg(&src)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unmapped-bank"));
    fs::remove_file(src).ok();
}

#[test]
fn verify_accepts_assembled_hex() {
    let src = temp_path("m.s");
    let hex = temp_path("m.hex");
    fs::write(&src, SOURCE).unwrap();
    let out = ouas()
        .arg("asm")
        .arg(&src)
        .arg("-o")
        .arg(&hex)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = ouas().arg("verify").arg(&hex).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    fs::remove_file(src).ok();
    fs::remove_file(hex).ok();
}

#[test]
fn bad_analyzer_flag_is_a_usage_error() {
    let out = ouas()
        .args(["verify", "--bank", "9=64", "whatever.s"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}
